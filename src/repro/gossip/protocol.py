"""The three-phase gossip protocol node, with LiFTinG attached.

One :class:`GossipNode` implements §3's propose / request / serve cycle
and hosts the LiFTinG components: the verification engine (§5.2), a
reputation manager for the nodes it manages (§5.1), and an auditor
(§5.3).  Every decision an attacker could subvert is delegated to the
node's :class:`~repro.nodes.behavior.Behavior`.

The node is transport-agnostic: it talks to the world through a small
``transport`` facade (``send``, ``call_later``, ``clock``) which the
discrete-event simulator and the asyncio runtime both provide.  Under
the simulator the facade is :class:`SimTransport` below.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.config import GossipParams, LiftingParams
from repro.core.audit import Auditor, AuditResult
from repro.core.reputation import (
    ManagerAssignment,
    ReputationManager,
    ReputationPool,
    ScoreReader,
)
from repro.core.soa import ProtocolStatePool
from repro.core.verification import VerificationEngine
from repro.gossip.chunks import SOURCE_ID, ChunkStore
from repro.gossip.history import LocalHistory
from repro.gossip.messages import (
    Ack,
    AuditRequest,
    AuditResponse,
    Blame,
    Confirm,
    ConfirmResponse,
    ExpelVote,
    HistoryPollRequest,
    HistoryPollResponse,
    MembershipUpdate,
    Ping,
    PingAck,
    PingReq,
    Propose,
    Request,
    ScoreQuery,
    ScoreReply,
    Serve,
    WIRE_MESSAGE_CLASSES,
)
from repro.membership.base import STATUS_ALIVE, STATUS_DEAD, STATUS_SUSPECT
from repro.membership.failure_detector import FailureDetectorParams, SwimFailureDetector
from repro.nodes.behavior import Behavior
from repro.sim.engine import Simulator
from repro.sim.engine import _PENDING  # heap-entry status word
from repro.sim.network import Network, Transport
from repro.sim.network import _TCP, _UDP
from repro.util.validation import require

NodeId = int
ChunkId = int

#: Upper bound on remembered alternative proposers per chunk; retries
#: walk the list newest-first, so older entries are rarely reachable.
MAX_OFFERS_PER_CHUNK = 16


class SimTransport:
    """Binds a node to the discrete-event simulator and network.

    The transport facade (``clock`` / ``call_later`` / ``call_every`` /
    ``send``) is everything a protocol node needs from its environment;
    :class:`repro.runtime.transport.AsyncTransport` provides the same
    facade over real sockets and the asyncio event loop.
    """

    def __init__(self, sim: Simulator, network: Network) -> None:
        self.sim = sim
        self.network = network

    def clock(self) -> float:
        return self.sim.now

    def call_later(self, delay: float, callback: Callable[..., None], *args):
        return self.sim.call_later(delay, callback, *args)

    def call_every(self, interval: float, callback, *, first_delay: float, jitter=None):
        return self.sim.call_every(
            interval, callback, first_at=self.sim.now + first_delay, jitter=jitter
        )

    def send(self, src: NodeId, dst: NodeId, message: object, reliable: bool) -> bool:
        return self.network.send(src, dst, message, _TCP if reliable else _UDP)


@dataclass(slots=True)
class _SentProposal:
    """Bookkeeping for a proposal we emitted (to validate requests)."""

    partners: Set[NodeId]
    chunk_ids: Set[ChunkId]
    at: float


@dataclass
class NodeStats:
    """Per-node counters the metrics layer reads."""

    chunks_received: int = 0
    duplicate_serves: int = 0
    proposals_sent: int = 0
    proposals_received: int = 0
    requests_received: int = 0
    chunks_served: int = 0
    blames_emitted: float = 0.0
    blame_messages: int = 0


class GossipNode:
    """A protocol participant (honest or not — the behaviour decides)."""

    def __init__(
        self,
        node_id: NodeId,
        transport,
        sampler,
        gossip: GossipParams,
        lifting: LiftingParams,
        behavior: Behavior,
        assignment: Optional[ManagerAssignment] = None,
        rng: Optional[np.random.Generator] = None,
        *,
        lifting_enabled: bool = True,
        compensation: Optional[float] = None,
        chunk_created_at: Optional[Callable[[ChunkId], float]] = None,
        on_expel_quorum: Optional[Callable[[NodeId, str], None]] = None,
        start_time: float = 0.0,
        p_audit: float = 0.0,
        detector: Optional[FailureDetectorParams] = None,
        on_membership_event: Optional[Callable[[NodeId, NodeId, str, int], None]] = None,
        state_pool: Optional[ProtocolStatePool] = None,
        state_slot: Optional[int] = None,
        reputation_pool: Optional[ReputationPool] = None,
    ) -> None:
        require(node_id >= 0, "node ids must be non-negative (SOURCE_ID=-1 is reserved)")
        self.node_id = node_id
        self.transport = transport
        # Hot-path shortcuts: ``send`` runs per protocol message, and
        # ``call_later`` / ``clock`` per verification window, so the
        # transport's bound methods are cached once instead of
        # re-resolved per call.  Under the simulator the facade is
        # bypassed entirely: the network/engine methods are bound
        # directly, skipping one wrapper frame per call.
        sim = getattr(transport, "sim", None)
        network = getattr(transport, "network", None)
        self._transport_send = transport.send
        self._net_send = network.send if network is not None else None
        self._net_send_many = network.send_many if network is not None else None
        self._transport_call_later = (
            sim.call_later if sim is not None else transport.call_later
        )
        self._sim = sim
        self.sampler = sampler
        self.gossip = gossip
        self.lifting = lifting
        self.behavior = behavior
        self.assignment = assignment
        self.rng = rng if rng is not None else np.random.default_rng(node_id)
        self.lifting_enabled = lifting_enabled
        self.chunk_created_at = chunk_created_at
        self.on_expel_quorum = on_expel_quorum

        self.store = ChunkStore()
        self.history = LocalHistory(max_periods=lifting.history_periods + 2)
        self.stats = NodeStats()
        self.period = 0
        #: True once the first gossip period opened the history (checked
        #: per received message; cheaper than the history property).
        self._history_open = False
        # Hot transient state (fresh chunk map, pending-chunk set, blame
        # outbox) lives in pooled struct-of-arrays columns — one
        # cluster-owned pool slot per node when ``state_pool`` is given,
        # a private capacity-1 pool for standalone nodes.  Row append
        # order stands in for the dict insertion order the old per-node
        # containers exposed (the propose phase and blame flush depend
        # on it for byte-identical RNG behaviour).
        if state_pool is None:
            state_pool = ProtocolStatePool(capacity=1)
            state_slot = 0
        self._state_pool = state_pool
        self._state_slot = state_slot if state_slot is not None else 0
        self._fresh_rows = state_pool.fresh
        self._pending_rows = state_pool.pending
        self._blame_rows = state_pool.blame
        self._sent_proposals: Dict[int, _SentProposal] = {}
        self._proposal_counter = 0
        self._timer = None
        # chunk -> alternative proposers (for re-requesting lost serves).
        self._offers: Dict[ChunkId, List[Tuple[NodeId, int, float]]] = {}
        # pending requests tracked by the node itself when no verification
        # engine runs (the baseline protocol also retries lost serves).
        self._naked_requests: Dict[int, Tuple[NodeId, Set[ChunkId]]] = {}

        self.engine = VerificationEngine(self) if lifting_enabled else None
        self.auditor = Auditor(self) if lifting_enabled else None
        self.score_reader = (
            ScoreReader(self) if lifting_enabled and assignment is not None else None
        )
        self.manager: Optional[ReputationManager] = None
        if lifting_enabled and assignment is not None:
            self.manager = ReputationManager(
                owner=node_id,
                assignment=assignment,
                gossip=gossip,
                lifting=lifting,
                now=self.clock,
                compensation=compensation,
                start_time=start_time,
                pool=reputation_pool,
            )
        self.audit_scheduler = None
        if lifting_enabled and p_audit > 0.0:
            from repro.core.audit import AuditScheduler

            self.audit_scheduler = AuditScheduler(self, p_audit=p_audit)
        #: cluster-level callback for detector transitions; called as
        #: ``(reporter, node, status, incarnation)`` after the local
        #: blame-quarantine routing.
        self.on_membership_event = on_membership_event
        self.failure_detector: Optional[SwimFailureDetector] = None
        if detector is not None:
            self.failure_detector = SwimFailureDetector(
                self, detector, on_change=self._on_detector_event
            )
        self._dispatch = self._build_dispatch()
        #: public alias the network uses to deliver straight to handlers
        #: (must not be mutated after the node registers).
        self.dispatch_table = self._dispatch
        #: type-keyed batch handlers for same-destination delivery runs
        #: (see :meth:`_build_batch_dispatch`; same mutation rule).
        self.batch_dispatch_table = self._build_batch_dispatch()
        behavior.bind(self)

    def _build_dispatch(self) -> Dict[type, Callable]:
        """Type-keyed message dispatch table, built once per node.

        Replaces a 14-branch isinstance chain on the hottest protocol
        path; handlers owned by optional components (engine, manager,
        auditor, score reader) are only present when the component is —
        messages without an entry are dropped, exactly as the chain's
        ``is not None`` guards did.
        """
        table: Dict[type, Callable] = {
            Propose: self._on_propose,
            Request: self._on_request,
            Serve: self._on_serve,
            Confirm: self._on_confirm,
            ExpelVote: self._on_expel_vote,
            ScoreQuery: self._on_score_query,
            AuditRequest: self._on_audit_request,
            HistoryPollRequest: self._on_history_poll,
        }
        if self.engine is not None:
            table[Ack] = self.engine.on_ack
            table[ConfirmResponse] = self.engine.on_confirm_response
        if self.manager is not None:
            # Bound straight to the manager: a delivered Blame is the
            # most frequent reputation message and needs no node-level
            # bookkeeping.
            table[Blame] = self.manager.on_blame_message
        if self.score_reader is not None:
            table[ScoreReply] = self._on_score_reply
        if self.auditor is not None:
            table[AuditResponse] = self.auditor.on_audit_response
            table[HistoryPollResponse] = self.auditor.on_poll_response
        if self.failure_detector is not None:
            detector = self.failure_detector
            table[Ping] = detector.on_ping
            table[PingAck] = detector.on_ping_ack
            table[PingReq] = detector.on_ping_req
            table[MembershipUpdate] = detector.on_membership_update
        # Pre-seed the remaining wire classes with None so delivery-side
        # lookups are plain subscripts that hit for every protocol
        # message; an absent component still drops its messages.
        for cls in WIRE_MESSAGE_CLASSES:
            table.setdefault(cls, None)
        return table

    def _build_batch_dispatch(self) -> Dict[type, Callable]:
        """Type-keyed batch handlers for same-destination delivery runs.

        The calendar-queue drain (``Network._drain``) hands a run of
        consecutive same-class deliveries to one of these in a single
        call instead of one handler frame per message.  Contract:
        ``handler(entries, lo, hi)`` with timeline entries ``[time, seq,
        src, dst, message]`` — the drain has already advanced the clock
        to the run's *last* entry time, so handlers whose per-message
        logic reads the clock or sends messages must walk ``sim.now``
        entry by entry (the ones below do).  Only handlers that cannot
        misorder a run are published: they must not expel nodes, and any
        timer they arm must be due beyond the timeline's bucket width —
        Propose and Ack handlers arm serve/confirm timeouts, so they are
        included only when those timeouts clear the bucket width.
        """
        network = getattr(self.transport, "network", None)
        timeline = network._timeline if network is not None else None
        width = timeline.width if timeline is not None else 0.0
        table: Dict[type, Callable] = {Serve: self._on_serve_batch}
        if self.lifting.serve_timeout > width:
            table[Propose] = self._on_propose_batch
        if self.engine is not None and self.lifting.confirm_timeout > width:
            table[Ack] = self.engine.on_ack_batch
        if self.manager is not None:
            table[Blame] = self.manager.on_blame_entries
        return table

    # ------------------------------------------------------------------
    # transport facade used by the engine / auditor
    # ------------------------------------------------------------------
    def clock(self) -> float:
        """Current time."""
        sim = self._sim
        return sim.now if sim is not None else self.transport.clock()

    def call_later(self, delay: float, callback: Callable[..., None], *args):
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        return self._transport_call_later(delay, callback, *args)

    def random(self) -> float:
        """One uniform [0, 1) draw from the node's stream."""
        return float(self.rng.random())

    def send(self, dst: NodeId, message: object, reliable: bool = False) -> bool:
        """Send ``message`` to ``dst`` (TCP when ``reliable``)."""
        # A unicast is a one-destination fan-out; calling the network's
        # send_many directly skips the Network.send delegation frame on
        # the hottest per-message path.
        send_many = self._net_send_many
        if send_many is not None:
            return send_many(self.node_id, (dst,), message, _TCP if reliable else _UDP) > 0
        return self._transport_send(self.node_id, dst, message, reliable)

    def send_many(self, dsts, message: object, reliable: bool = False) -> int:
        """Send ``message`` to every node in ``dsts`` (fan-out batch).

        Equivalent to ``send`` per destination in order; under the
        simulator the per-message fixed costs are paid once per batch
        (see :meth:`Network.send_many`).  Returns how many were sent.
        """
        send_many = self._net_send_many
        if send_many is not None:
            return send_many(self.node_id, dsts, message, _TCP if reliable else _UDP)
        sent = 0
        for dst in dsts:
            if self._transport_send(self.node_id, dst, message, reliable):
                sent += 1
        return sent

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic gossip loop, desynchronised across nodes."""
        offset = float(self.rng.uniform(0.0, self.gossip.gossip_period))
        jitter_scale = 0.02 * self.gossip.gossip_period

        def jitter() -> float:
            return float(self.rng.uniform(-jitter_scale, jitter_scale))

        self._timer = self.transport.call_every(
            self.gossip.gossip_period,
            self._on_period,
            first_delay=offset,
            jitter=jitter,
        )
        if self.failure_detector is not None:
            self.failure_detector.start()

    def stop(self) -> None:
        """Stop the periodic loop (node leaves / experiment teardown)."""
        if self._timer is not None:
            self._timer.stop()
        if self.failure_detector is not None:
            self.failure_detector.stop()

    def reset_gossip_state(self) -> None:
        """Drop in-flight protocol state after a crash, before rejoining.

        The history restarts empty, which is exactly the young-node
        situation the audit layer already tolerates (short histories are
        not auto-guilty) — the rejoining node re-earns its record under
        its bumped incarnation.
        """
        self.history = LocalHistory(max_periods=self.lifting.history_periods + 2)
        self._history_open = False
        self._state_pool.clear_slot(self._state_slot)
        self._sent_proposals.clear()
        self._offers.clear()
        self._naked_requests.clear()
        if self.engine is not None:
            # The old incarnation's ack expectations and open windows
            # must not draw blames against the new one (or its peers).
            self.engine.reset_transient()

    def adopt_state_slot(self, slot: int) -> None:
        """Point this node at a fresh (zeroed) pooled state slot.

        Called by the cluster after a remap-on-readmit: the registry has
        already retired and zeroed the old slot, so the node starts its
        new incarnation with empty columns.
        """
        self._state_slot = slot

    @property
    def _pending_chunks(self) -> Set[ChunkId]:
        """Pending-chunk ids as a set (debug/test view of pooled rows)."""
        return set(self._pending_rows.values(self._state_slot))

    # ------------------------------------------------------------------
    # the gossip period
    # ------------------------------------------------------------------
    def _on_period(self) -> None:
        self.period += 1
        self.history.begin_period(self.period)
        self._history_open = True
        if self.engine is not None:
            self.engine.on_period_tick()
        self.behavior.on_period_start(self.period)
        self._flush_blames()
        self._prune_offers()
        self._run_manager_duties()
        if self.audit_scheduler is not None:
            self.audit_scheduler.on_period_tick()
        detector = self.failure_detector
        if detector is not None:
            detector.on_period_tick()
            # Updates the probe did not carry ride the gossip fan-out
            # (SWIM's piggyback dissemination, zero extra round trips).
            updates = detector.drain_updates()
            if updates:
                partners = self.sampler.sample(self.node_id, self.gossip.fanout)
                if partners:
                    self.send_many(partners, MembershipUpdate(updates=updates))
        if self.period % self.behavior.period_stride() != 0:
            return
        self._propose_phase()

    def _prune_offers(self) -> None:
        """Drop alternative-source bookkeeping older than two periods.

        Pruning looks *inside* each per-chunk list, not just at its most
        recent entry — otherwise one fresh offer would keep arbitrarily
        many stale earlier entries (and their node references) alive.
        """
        horizon = self.clock() - 2 * self.gossip.gossip_period
        dead = []
        for chunk_id, offers in self._offers.items():
            if not offers or offers[-1][2] < horizon:
                dead.append(chunk_id)
            elif offers[0][2] < horizon:
                offers[:] = [o for o in offers if o[2] >= horizon]
        for chunk_id in dead:
            del self._offers[chunk_id]

    def _propose_phase(self) -> None:
        # Consume the fresh-map rows; append order == the old dict's
        # insertion order, so ``by_server`` (and the per-server RNG
        # draws inside propose_filter) sees the identical sequence.
        fresh_chunks, fresh_origins = self._fresh_rows.take(self._state_slot)
        if not fresh_chunks:
            return
        by_server: Dict[NodeId, List[ChunkId]] = {}
        for chunk_id, server in zip(fresh_chunks, fresh_origins):
            chunks = by_server.get(server)
            if chunks is None:
                chunks = by_server[server] = []
            chunks.append(chunk_id)
        filtered = self.behavior.propose_filter(by_server)
        chunk_ids: Tuple[ChunkId, ...] = tuple(
            sorted(c for ids in filtered.values() for c in ids)
        )
        partners = self.behavior.select_partners(self.gossip.fanout)
        if not partners or not chunk_ids:
            return

        self._proposal_counter += 1
        proposal_id = (self.node_id << 20) | (self._proposal_counter & 0xFFFFF)
        propose = Propose(proposal_id=proposal_id, chunk_ids=chunk_ids)
        self.send_many(partners, propose)
        self.stats.proposals_sent += 1
        self.history.record_proposal(tuple(partners), chunk_ids)
        self._sent_proposals[proposal_id] = _SentProposal(
            partners=set(partners), chunk_ids=set(chunk_ids), at=self.clock()
        )
        self._expire_old_proposals()

        if self.lifting_enabled:
            reported = self.behavior.ack_partners(tuple(partners))
            for server, ids in filtered.items():
                if server == SOURCE_ID or server == self.node_id:
                    continue
                self.send(server, Ack(chunk_ids=tuple(sorted(ids)), partners=reported))

    def _expire_old_proposals(self) -> None:
        """Drop proposal bookkeeping older than a few periods."""
        horizon = self.clock() - 4 * self.gossip.gossip_period
        stale = [pid for pid, rec in self._sent_proposals.items() if rec.at < horizon]
        for pid in stale:
            del self._sent_proposals[pid]

    def _run_manager_duties(self) -> None:
        if self.manager is None:
            return
        for target in self.manager.expulsion_candidates():
            self._broadcast_expel_vote(target)
            # Count our own vote towards the quorum.
            if self.manager.on_expel_vote(self.node_id, target):
                self._expel_quorum_reached(target)

    def _broadcast_expel_vote(self, target: NodeId) -> None:
        vote = ExpelVote(target=target)
        self.send_many(
            [m for m in self.assignment.managers_of(target) if m != self.node_id],
            vote,
        )

    def _expel_quorum_reached(self, target: NodeId) -> None:
        if self.on_expel_quorum is not None:
            self.on_expel_quorum(self.node_id, target, "score")

    def _on_detector_event(self, node: NodeId, status: str, incarnation: int) -> None:
        """A local failure-detector transition for ``node``.

        Routes the churn signal into the blame pipeline first — suspects
        get their blames quarantined, refuted suspects get them
        discarded, confirmed-dead nodes get them released (silence is
        freerider-compatible) — then forwards to the cluster-level
        handler that maintains the shared membership directory.
        """
        manager = self.manager
        if manager is not None:
            if status == STATUS_SUSPECT:
                manager.quarantine_target(node)
            elif status == STATUS_ALIVE:
                manager.discard_quarantine(node)
            elif status == STATUS_DEAD:
                manager.release_quarantine(node)
        callback = self.on_membership_event
        if callback is not None:
            callback(self.node_id, node, status, incarnation)

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------
    def on_message(self, src: NodeId, message: object) -> None:
        """Network entry point (exact-type dispatch; see _build_dispatch)."""
        handler = self._dispatch.get(message.__class__)
        if handler is not None:
            handler(src, message)

    def on_message_batch(self, entries, lo: int, hi: int) -> None:
        """Deliver a batch of messages for this node in one call.

        ``entries[lo:hi]`` are delivery-timeline entries ``[time, seq,
        src, dst, message]`` in firing order.  Consecutive same-class
        spans go through :attr:`batch_dispatch_table` when a batch
        handler exists, the rest through the per-message dispatch table
        — semantics are identical to delivering each message alone.
        This is the generic entry point for transports that coalesce
        (the simulator's drain calls the batch table directly; a live
        transport draining several datagrams per wakeup would call
        this).
        """
        sim = self._sim
        dispatch = self._dispatch
        batch = self.batch_dispatch_table
        i = lo
        while i < hi:
            e = entries[i]
            cls = e[4].__class__
            j = i + 1
            while j < hi and entries[j][4].__class__ is cls:
                j += 1
            handler = batch.get(cls)
            if handler is not None and j > i + 1:
                handler(entries, i, j)
            else:
                handler = dispatch.get(cls)
                for k in range(i, j):
                    e = entries[k]
                    if sim is not None:
                        sim.now = e[0]
                    if handler is not None:
                        handler(e[2], e[4])
            i = j

    def _on_score_reply(self, src: NodeId, message: ScoreReply) -> None:
        self.score_reader.on_reply(src, message.target, message.score, message.known)

    # ------------------------------------------------------------------
    # three phases (§3)
    # ------------------------------------------------------------------
    def _on_propose(self, src: NodeId, message: Propose) -> None:
        self.stats.proposals_received += 1
        if self._history_open:
            self.history.record_received_proposal(src, message.chunk_ids)
        sim = self._sim
        now = sim.now if sim is not None else self.clock()
        needed = []
        owned = self.store.owned
        pending = self._pending_rows.values(self._state_slot)
        for chunk_id in message.chunk_ids:
            if chunk_id in owned:
                continue
            # Remember alternative sources for chunks we do not request
            # now — a lost serve is re-requested from one of them.  Each
            # list is bounded: retries walk it newest-first, so beyond
            # MAX_OFFERS_PER_CHUNK the oldest entries are dead weight.
            offers = self._offers.get(chunk_id)
            if offers is None:
                offers = self._offers[chunk_id] = []
            offers.append((src, message.proposal_id, now))
            if len(offers) > MAX_OFFERS_PER_CHUNK:
                del offers[0]
            if chunk_id not in pending:
                needed.append(chunk_id)
        if not needed:
            return
        needed = tuple(needed)
        self._send_request(src, message.proposal_id, needed)

    def _on_propose_batch(self, entries, lo: int, hi: int) -> None:
        """Batched :meth:`_on_propose`: one frame for a delivery run.

        Identical per-message effects in the same order, with the
        shared lookups (store alias, offer map, history flag) hoisted
        out of the loop and the clock advanced per entry.
        """
        sim = self._sim
        stats = self.stats
        history = self.history
        history_open = self._history_open
        owned = self.store.owned
        offer_map = self._offers
        pending_rows = self._pending_rows
        slot = self._state_slot
        for k in range(lo, hi):
            e = entries[k]
            if sim is not None:
                sim.now = e[0]
                now = e[0]
            else:
                now = self.clock()
            src = e[2]
            message = e[4]
            stats.proposals_received += 1
            if history_open:
                history.record_received_proposal(src, message.chunk_ids)
            proposal_id = message.proposal_id
            needed = []
            # Re-read per message: _send_request below appends rows.
            pending = pending_rows.values(slot)
            for chunk_id in message.chunk_ids:
                if chunk_id in owned:
                    continue
                offers = offer_map.get(chunk_id)
                if offers is None:
                    offers = offer_map[chunk_id] = []
                offers.append((src, proposal_id, now))
                if len(offers) > MAX_OFFERS_PER_CHUNK:
                    del offers[0]
                if chunk_id not in pending:
                    needed.append(chunk_id)
            if needed:
                self._send_request(src, proposal_id, tuple(needed))

    def _send_request(
        self, proposer: NodeId, proposal_id: int, chunk_ids: Tuple[ChunkId, ...]
    ) -> None:
        request = Request(proposal_id=proposal_id, chunk_ids=chunk_ids)
        send_many = self._net_send_many
        if send_many is not None:
            send_many(self.node_id, (proposer,), request, _UDP)
        else:
            self.send(proposer, request)
        pending_rows = self._pending_rows
        slot = self._state_slot
        for chunk_id in chunk_ids:
            # add_unique: retry requests re-request chunks that are
            # already pending (the old set.update was idempotent too).
            pending_rows.add_unique(slot, chunk_id)
        if self.engine is not None:
            self.engine.on_request_sent(proposer, proposal_id, chunk_ids)
        else:
            # Baseline protocol (LiFTinG off): still watch the request so
            # lost serves get retried from an alternative proposer.
            self._naked_requests[proposal_id] = (proposer, set(chunk_ids))
            self.call_later(
                self.lifting.serve_timeout, self._check_naked_request, proposal_id
            )

    def _check_naked_request(self, proposal_id: int) -> None:
        entry = self._naked_requests.pop(proposal_id, None)
        if entry is None:
            return
        proposer, chunk_ids = entry
        missing = {c for c in chunk_ids if c not in self.store}
        if missing:
            self.on_request_expired(proposer, missing)

    def _on_request(self, src: NodeId, message: Request) -> None:
        record = self._sent_proposals.get(message.proposal_id)
        if record is None or src not in record.partners:
            return  # §4.2: requests not matching a proposal are ignored
        self.stats.requests_received += 1
        owned = self.store.owned
        valid = [
            c for c in message.chunk_ids if c in record.chunk_ids and c in owned
        ]
        to_serve = self.behavior.serve_filter(valid)
        origin = self.behavior.serve_origin()
        for chunk_id in to_serve:
            serve = Serve(
                proposal_id=message.proposal_id,
                chunk_id=chunk_id,
                payload_size=self.store.size_of(chunk_id),
                origin=origin,
            )
            self.send(src, serve)
            self.stats.chunks_served += 1
            if self.engine is not None and origin == self.node_id:
                # A MITM colluder points the ack at the spoofed origin,
                # so it cannot (and does not) expect one itself.
                self.engine.on_serve_sent(src, chunk_id)

    def _on_serve(self, src: NodeId, message: Serve) -> None:
        if self.engine is not None:
            self.engine.on_serve_received(message.proposal_id, message.chunk_id)
        sim = self._sim
        now = sim.now if sim is not None else self.clock()
        created_at = (
            self.chunk_created_at(message.chunk_id)
            if self.chunk_created_at is not None
            else now
        )
        fresh = self.store.add(
            message.chunk_id, message.payload_size, received_at=now, created_at=created_at
        )
        self._pending_rows.discard(self._state_slot, message.chunk_id)
        if not fresh:
            self.stats.duplicate_serves += 1
            return
        self.stats.chunks_received += 1
        origin = message.origin
        self._fresh_rows.append(self._state_slot, message.chunk_id, origin)
        if self._history_open and origin != SOURCE_ID:
            self.history.record_fanin(origin)

    def _on_serve_batch(self, entries, lo: int, hi: int) -> None:
        """Batched :meth:`_on_serve`: one frame for a delivery run."""
        sim = self._sim
        engine = self.engine
        stats = self.stats
        store = self.store
        created_at = self.chunk_created_at
        history = self.history
        history_open = self._history_open
        fresh_rows = self._fresh_rows
        pending_rows = self._pending_rows
        slot = self._state_slot
        for k in range(lo, hi):
            e = entries[k]
            if sim is not None:
                sim.now = e[0]
                now = e[0]
            else:
                now = self.clock()
            message = e[4]
            chunk_id = message.chunk_id
            if engine is not None:
                engine.on_serve_received(message.proposal_id, chunk_id)
            created = created_at(chunk_id) if created_at is not None else now
            fresh = store.add(
                chunk_id, message.payload_size, received_at=now, created_at=created
            )
            pending_rows.discard(slot, chunk_id)
            if not fresh:
                stats.duplicate_serves += 1
                continue
            stats.chunks_received += 1
            origin = message.origin
            fresh_rows.append(slot, chunk_id, origin)
            if history_open and origin != SOURCE_ID:
                history.record_fanin(origin)

    # ------------------------------------------------------------------
    # LiFTinG message handlers
    # ------------------------------------------------------------------
    def _on_confirm(self, src: NodeId, message: Confirm) -> None:
        if self._history_open:
            self.history.record_confirm_sender(message.proposer, src)
        # Defer the answer: the confirm races the propose it asks about
        # (verifier is only an ack + confirm hop behind the proposer), so
        # the testimony is evaluated after a grace delay.  The timer is
        # never cancelled, so under the simulator it goes through the
        # handle-free ``schedule`` fast path.
        delay = self.lifting.witness_answer_delay
        if delay > 0:
            sim = self._sim
            if sim is not None:
                # Inlined Simulator.schedule (the network does the same
                # for deliveries) — one Confirm per served batch makes
                # this the engine's biggest timer source.  schedule()'s
                # validation survives as one comparison: a non-finite
                # configured delay must raise, not enqueue a timer that
                # never fires.
                time = sim.now + delay
                if not time < float("inf"):  # also rejects NaN
                    raise ValueError(f"witness answer due at invalid time {time!r}")
                heappush(
                    sim._queue,
                    [time, sim._sequence, self._answer_confirm, (src, message), _PENDING],
                )
                sim._sequence += 1
                sim._live += 1
            else:
                self.call_later(delay, self._answer_confirm, src, message)
        else:
            self._answer_confirm(src, message)

    def _answer_confirm(self, src: NodeId, message: Confirm) -> None:
        truthful = self.history.was_proposed_by(
            message.proposer, message.chunk_ids, last=3
        )
        valid = self.behavior.confirm_answer(src, message.proposer, truthful)
        response = ConfirmResponse(proposer=message.proposer, valid=valid)
        # One ConfirmResponse per witness per confirm round makes this a
        # top-three unicast site; go straight to the network fan-out.
        send_many = self._net_send_many
        if send_many is not None:
            send_many(self.node_id, (src,), response, _UDP)
        else:
            self.send(src, response)

    def _on_expel_vote(self, src: NodeId, message: ExpelVote) -> None:
        if self.manager is None:
            return
        if self.manager.on_expel_vote(src, message.target):
            self._expel_quorum_reached(message.target)

    def _on_score_query(self, src: NodeId, message: ScoreQuery) -> None:
        if self.manager is None:
            return
        score = self.manager.normalized_score(message.target)
        reply = ScoreReply(
            target=message.target,
            score=score if score is not None else 0.0,
            known=score is not None,
        )
        self.send(src, reply)

    def _on_audit_request(self, src: NodeId, message: AuditRequest) -> None:
        snapshot = self.history.proposals_snapshot(last=message.periods)
        snapshot = self.behavior.history_snapshot(snapshot)
        self.send(src, AuditResponse(proposals=snapshot), reliable=True)

    def _on_history_poll(self, src: NodeId, message: HistoryPollRequest) -> None:
        truthful_ack = self.history.was_proposed_by(message.target, message.chunk_ids)
        senders = self.history.confirm_senders_about(message.target)
        acknowledged, senders = self.behavior.poll_answer(
            src, message.target, truthful_ack, senders
        )
        response = HistoryPollResponse(
            target=message.target,
            period=message.period,
            acknowledged=acknowledged,
            confirm_senders=tuple(senders),
        )
        self.send(src, response, reliable=True)

    # ------------------------------------------------------------------
    # callbacks used by the engine / auditor
    # ------------------------------------------------------------------
    def send_blame(self, target: NodeId, value: float, reason: str) -> None:
        """Queue a blame; the outbox fans it to the managers each period.

        Batching all blames of a period into one message per target
        keeps the reputation traffic at O(targets · M) instead of
        O(blame events · M) — blame values are summable by design (§5).
        """
        if target in (self.node_id, SOURCE_ID) or self.assignment is None:
            return
        if value > 0 and not self.behavior.should_blame(target):
            return
        self.stats.blames_emitted += max(value, 0.0)
        self._blame_rows.append(self._state_slot, target, value)

    def _flush_blames(self) -> None:
        blame_rows = self._blame_rows
        slot = self._state_slot
        if not blame_rows.counts[slot]:
            return
        targets_log, values_log = blame_rows.take(slot)
        # Aggregate per target in first-occurrence order with the same
        # left-to-right float additions the old defaultdict accumulated.
        totals: Dict[NodeId, float] = {}
        for target, value in zip(targets_log, values_log):
            totals[target] = totals.get(target, 0.0) + value
        node_id = self.node_id
        local_targets: List[NodeId] = []
        local_values: List[float] = []
        for target, value in totals.items():
            if value == 0.0:
                continue
            blame = Blame(target=target, value=value, reason="period-batch")
            managers = self.assignment.managers_of(target)
            if node_id in managers:
                local_targets.append(target)
                local_values.append(value)
                remote = [m for m in managers if m != node_id]
            else:
                remote = managers
            self.send_many(remote, blame)
            self.stats.blame_messages += len(remote)
        if local_targets and self.manager is not None:
            # This node manages some of its blame targets: apply the
            # whole period's worth in one batch.
            self.manager.on_blame_batch(local_targets, local_values)

    def on_request_expired(self, proposer: NodeId, chunk_ids: Set[ChunkId]) -> None:
        """A request (partially) timed out: retry elsewhere or release.

        The serve or the request itself may have been lost; the node
        re-requests each missing chunk from an alternative proposer that
        recently advertised it, falling back to releasing the pending
        mark so future proposals can pick it up.
        """
        retry: Dict[Tuple[NodeId, int], List[ChunkId]] = defaultdict(list)
        for chunk_id in chunk_ids:
            if chunk_id in self.store:
                continue
            network = getattr(self.transport, "network", None)
            alternative = None
            for src, pid, _at in reversed(self._offers.get(chunk_id, ())):
                if src != proposer and (network is None or network.is_connected(src)):
                    alternative = (src, pid)
                    break
            if alternative is not None:
                retry[alternative].append(chunk_id)
            else:
                self._pending_rows.discard(self._state_slot, chunk_id)
        for (src, pid), ids in retry.items():
            self._send_request(src, pid, tuple(ids))

    def on_audit_verdict(self, target: NodeId, result: AuditResult) -> None:
        """An audit we ran completed; escalate entropy failures."""
        if not result.passed and self.on_expel_quorum is not None:
            self.on_expel_quorum(self.node_id, target, "audit")

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GossipNode(id={self.node_id}, behavior={self.behavior.name}, "
            f"chunks={len(self.store)})"
        )
