"""Message-loss models for the datagram (UDP) path.

The paper's analysis assumes i.i.d. Bernoulli losses with parameter
``p_l`` (§6.2); PlanetLab adds per-node heterogeneity (some hosts lose
far more than the 4 % average — these become the paper's false
positives).  Both are modelled here.  The reliable (TCP) path bypasses
loss models entirely, mirroring §5.3's choice to run audits over TCP.

Performance note
----------------
The stochastic models pre-draw blocks of uniforms (see
:data:`repro.sim.latency.SAMPLE_BLOCK`) and compare one buffered draw
per loss decision.  Numpy fills an array from the exact same bit stream
as repeated scalar ``random()`` calls, so seeded experiments are
bit-for-bit identical to per-call sampling.  The zero-probability
short-circuits consume no draw, exactly as before.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.sim.latency import SAMPLE_BLOCK
from repro.util.validation import require_probability

NodeId = int


class LossModel(abc.ABC):
    """Decides whether a datagram from ``src`` to ``dst`` is dropped."""

    @abc.abstractmethod
    def is_lost(self, src: NodeId, dst: NodeId) -> bool:
        """True if this transmission is dropped."""


class NoLoss(LossModel):
    """Perfect network — used by unit tests and the analysis baselines."""

    def is_lost(self, src: NodeId, dst: NodeId) -> bool:
        return False


class BernoulliLoss(LossModel):
    """I.i.d. loss with probability ``p_loss`` (the analysis model)."""

    def __init__(self, rng: np.random.Generator, p_loss: float) -> None:
        self._rng = rng
        self.p_loss = require_probability(p_loss, "p_loss")
        self._block: list = []
        self._next = 0

    def is_lost(self, src: NodeId, dst: NodeId) -> bool:
        if self.p_loss == 0.0:
            return False
        i = self._next
        block = self._block
        if i >= len(block):
            block = self._block = self._rng.random(SAMPLE_BLOCK).tolist()
            i = 0
        self._next = i + 1
        return block[i] < self.p_loss


class PerNodeLoss(LossModel):
    """Per-endpoint loss rates combined independently.

    A datagram survives only if it escapes the sender's loss rate *and*
    the receiver's: ``p_deliver = (1 - p[src]) * (1 - p[dst])``.  The
    ``base`` rate applies to the path itself.  This reproduces the
    PlanetLab situation where a handful of badly connected hosts are
    blamed far more than average honest nodes.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        base: float = 0.0,
        node_loss: dict = None,
    ) -> None:
        self._rng = rng
        self.base = require_probability(base, "base")
        self.node_loss = {k: require_probability(v, "node_loss") for k, v in (node_loss or {}).items()}
        self._block: list = []
        self._next = 0

    def set_node_loss(self, node: NodeId, p: float) -> None:
        """Set the endpoint loss rate of ``node``."""
        self.node_loss[node] = require_probability(p, "p")

    def loss_probability(self, src: NodeId, dst: NodeId) -> float:
        """Effective loss probability of the (src, dst) path."""
        p_keep = (
            (1.0 - self.base)
            * (1.0 - self.node_loss.get(src, 0.0))
            * (1.0 - self.node_loss.get(dst, 0.0))
        )
        return 1.0 - p_keep

    def is_lost(self, src: NodeId, dst: NodeId) -> bool:
        # The probability is recomputed per call on purpose: ``base``
        # and ``node_loss`` are public and may be mutated mid-run.  The
        # computation is inlined (not a ``loss_probability`` call): this
        # runs once per datagram.  When no node has an endpoint rate the
        # per-endpoint factors are exactly 1.0, so the homogeneous
        # short-cut below is bit-identical to the full product.
        node_loss = self.node_loss
        if node_loss:
            p = 1.0 - (
                (1.0 - self.base)
                * (1.0 - node_loss.get(src, 0.0))
                * (1.0 - node_loss.get(dst, 0.0))
            )
        else:
            p = 1.0 - (1.0 - self.base)
        if p <= 0.0:
            return False
        i = self._next
        block = self._block
        if i >= len(block):
            block = self._block = self._rng.random(SAMPLE_BLOCK).tolist()
            i = 0
        self._next = i + 1
        return block[i] < p
