"""Upload-bandwidth modelling.

Freeriding matters because upload bandwidth is the scarce resource
(§1).  Each node owns an :class:`UploadLink`: a serialising queue with a
capacity in bytes/second.  Sending a message occupies the link for
``size / rate`` seconds; concurrent sends queue behind each other.  A
node with a small capacity therefore ships chunks late — exactly the
"poor capabilities" honest nodes that show up as false positives in the
paper's PlanetLab runs (§7.3).

An infinite-capacity link (the default) degenerates to zero
serialisation delay, which keeps unit tests simple.
"""

from __future__ import annotations

import math

from repro.util.validation import require, require_positive


class UploadLink:
    """Serialising upload link with a byte/second capacity.

    The link tracks the time at which it becomes free; a transmission
    enqueued at ``now`` starts at ``max(now, free_at)`` and completes
    ``size / rate`` later.

    >>> link = UploadLink(rate_bytes_per_s=1000.0)
    >>> link.transmit(now=0.0, size_bytes=500)   # 0.5 s serialisation
    0.5
    >>> link.transmit(now=0.0, size_bytes=500)   # queues behind the first
    1.0
    """

    __slots__ = ("rate", "free_at", "bytes_sent")

    def __init__(self, rate_bytes_per_s: float = math.inf) -> None:
        if not math.isinf(rate_bytes_per_s):
            require_positive(rate_bytes_per_s, "rate_bytes_per_s")
        self.rate = rate_bytes_per_s
        self.free_at = 0.0
        self.bytes_sent = 0

    def transmit(self, now: float, size_bytes: int) -> float:
        """Account a transmission of ``size_bytes`` starting at ``now``.

        Returns the absolute time at which the last byte leaves the
        link (i.e. when the message enters the network).
        """
        if not size_bytes >= 0:  # negated form also rejects NaN
            require(size_bytes >= 0, "size_bytes must be >= 0, got %r", size_bytes)
        self.bytes_sent += size_bytes
        rate = self.rate
        if rate == math.inf:
            return now
        start = self.free_at
        if now > start:
            start = now
        finish = start + size_bytes / rate
        self.free_at = finish
        return finish

    def queueing_delay(self, now: float) -> float:
        """Seconds a message enqueued at ``now`` waits before starting."""
        return max(0.0, self.free_at - now)

    def reset(self) -> None:
        """Clear the queue and byte counter (used between experiment runs)."""
        self.free_at = 0.0
        self.bytes_sent = 0


def kbps(value: float) -> float:
    """Convert kilobits/second to bytes/second (1 kbps = 125 B/s)."""
    require(value >= 0, "rate must be >= 0, got %r", value)
    return value * 125.0
