"""The discrete-event engine: a simulated clock and an event queue.

Design notes
------------
* Events are plain-list heap entries ``[time, seq, callback, args,
  status]`` in a binary heap — no closure is required on the hot path:
  callers pass positional ``args`` inline (``sim.schedule(t, fn, a,
  b)``) instead of wrapping them in a lambda.  The monotonically
  increasing sequence number breaks ties, so two events scheduled for
  the same instant fire in scheduling order — this keeps runs fully
  deterministic.
* :class:`Timer` handles (returned by ``call_at`` / ``call_later``) are
  a ``list`` subclass: the handle *is* the heap entry, so a cancellable
  event costs one allocation, and the handle-free :meth:`Simulator.
  schedule` path costs one plain list.
* Cancellation is lazy: cancelling flips the entry's status word and
  bumps the engine's cancellation generation counter; the entry is
  skipped when popped.  When cancelled entries outnumber live ones the
  heap is compacted in place, so retry/audit churn cannot make the heap
  grow without bound.
* The engine keeps an O(1) live-event counter (``pending_events``)
  instead of scanning the heap.
* The scheduling and run loops are deliberately inlined (no helper
  calls, validation by plain comparison on the happy path): CPython
  frame setup dominates at millions of events per second.
* The engine knows nothing about networks or nodes; those live in
  :mod:`repro.sim.network`.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Callable, List, Optional

from repro.util.validation import require

Callback = Callable[..., None]

_INF = math.inf

# Heap-entry slots: [_TIME, _SEQ, _CALLBACK, _ARGS, _STATUS(, _SIM)].
# The trailing _SIM slot exists only on Timer entries; the unique _SEQ
# guarantees heap comparisons never look past the first two slots.
_TIME = 0
_SEQ = 1
_CALLBACK = 2
_ARGS = 3
_STATUS = 4
_SIM = 5

# Status words.
_PENDING = 0
_FIRED = 1
_CANCELLED = 2

#: Compaction trigger: at least this many cancelled entries *and* more
#: cancelled than live entries in the heap.
_COMPACT_MIN = 64


class Timer(list):
    """Handle for a scheduled event; supports cancellation.

    Instances are returned by :meth:`Simulator.call_at` /
    :meth:`Simulator.call_later`.  Cancelling after the event has fired
    is a harmless no-op.  The handle *is* the engine's heap entry (a
    ``list`` subclass), so cancellable events cost a single allocation;
    code that never cancels should use :meth:`Simulator.schedule`,
    which allocates a plain list.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        """Absolute simulated time the event is (or was) due."""
        return self[_TIME]

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has taken effect."""
        return self[_STATUS] == _CANCELLED

    @property
    def fired(self) -> bool:
        """True once the callback has run."""
        return self[_STATUS] == _FIRED

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return self[_STATUS] == _PENDING

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self[_SIM]._cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("pending", "fired", "cancelled")[self[_STATUS]]
        return f"Timer(time={self[_TIME]!r}, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.call_later(2.0, lambda: order.append("b"))
    >>> _ = sim.call_later(1.0, lambda: order.append("a"))
    >>> sim.run()
    >>> order, sim.now
    (['a', 'b'], 2.0)
    """

    __slots__ = (
        "now",
        "_queue",
        "_sequence",
        "_events_processed",
        "_live",
        "_cancelled_in_heap",
        "_cancel_generation",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue: List[list] = []
        self._sequence = 0
        self._events_processed = 0
        self._live = 0  # O(1) pending-event counter
        self._cancelled_in_heap = 0  # cancelled entries awaiting lazy deletion
        self._cancel_generation = 0  # total cancellations ever issued

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: float, callback: Callback, *args) -> list:
        """Hot-path scheduling: no cancellation handle is allocated.

        ``callback`` is invoked as ``callback(*args)`` at absolute
        simulated ``time``; the args are stored inline in the heap entry
        so callers need no closure.  Returns the raw heap entry (opaque;
        pass it to :meth:`cancel_entry` if cancellation is ever needed).
        """
        if not (self.now <= time < _INF):  # also rejects NaN
            raise ValueError(
                f"event time must be finite and >= now={self.now!r}, got {time!r}"
            )
        entry = [time, self._sequence, callback, args, _PENDING]
        self._sequence += 1
        heappush(self._queue, entry)
        self._live += 1
        return entry

    def call_at(self, time: float, callback: Callback, *args) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Scheduling in the past raises — that is always a logic error in
        protocol code (e.g. a negative latency).
        """
        if not (self.now <= time < _INF):
            require(time >= self.now, "cannot schedule in the past (%r < now=%r)", time, self.now)
            require(math.isfinite(time), "event time must be finite, got %r", time)
        timer = Timer((time, self._sequence, callback, args, _PENDING, self))
        self._sequence += 1
        heappush(self._queue, timer)
        self._live += 1
        return timer

    def call_later(self, delay: float, callback: Callback, *args) -> Timer:
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            require(delay >= 0, "delay must be >= 0, got %r", delay)
        time = self.now + delay
        if not time < _INF:  # also rejects NaN
            require(math.isfinite(time), "event time must be finite, got %r", time)
        timer = Timer((time, self._sequence, callback, args, _PENDING, self))
        self._sequence += 1
        heappush(self._queue, timer)
        self._live += 1
        return timer

    def call_every(
        self,
        interval: float,
        callback: Callback,
        *,
        first_at: Optional[float] = None,
        jitter: Callable[[], float] = None,
    ) -> "PeriodicTimer":
        """Schedule ``callback`` every ``interval`` seconds.

        ``first_at`` sets the absolute time of the first invocation
        (defaults to ``now + interval``).  ``jitter``, if given, is
        called before each rescheduling and its return value is added to
        the interval — used to desynchronise gossip periods across
        nodes, as would naturally happen on a real testbed.
        """
        require(interval > 0, "interval must be > 0, got %r", interval)
        return PeriodicTimer(self, interval, callback, first_at=first_at, jitter=jitter)

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel_entry(self, entry: list) -> None:
        """Cancel a raw entry returned by :meth:`schedule`."""
        self._cancel(entry)

    def _cancel(self, entry: list) -> None:
        if entry[_STATUS] != _PENDING:
            return
        entry[_STATUS] = _CANCELLED
        entry[_CALLBACK] = None  # release references eagerly
        entry[_ARGS] = None
        self._live -= 1
        self._cancelled_in_heap += 1
        self._cancel_generation += 1
        # Compact when cancelled entries are the majority of the
        # *physical* heap.  len(queue) is always exact, unlike the live
        # counter, whose updates run() batches — comparing against
        # self._live here would leave compaction suppressed for the
        # whole of a long run() call.
        if (
            self._cancelled_in_heap >= _COMPACT_MIN
            and 2 * self._cancelled_in_heap > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (in place: the queue
        list identity is preserved for aliases held by the run loop)."""
        self._queue[:] = [e for e in self._queue if e[_STATUS] == _PENDING]
        heapify(self._queue)
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next event.  Returns False when no live event remains."""
        queue = self._queue
        while queue:
            entry = heappop(queue)
            if entry[_STATUS] != _PENDING:
                self._cancelled_in_heap -= 1
                continue
            self.now = entry[_TIME]
            self._live -= 1
            entry[_STATUS] = _FIRED
            self._events_processed += 1
            args = entry[_ARGS]
            if args:
                entry[_CALLBACK](*args)
            else:
                entry[_CALLBACK]()
            return True
        return False

    def run(self, *, until: float = math.inf, max_events: int = None) -> None:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` have *fired*.

        ``max_events`` counts events whose callback actually ran —
        cancelled timers skipped by lazy deletion do not count towards
        the budget.  When stopping at ``until``, the clock is advanced
        exactly to ``until`` so that a subsequent ``run`` resumes
        cleanly.

        The fired/live counters are accumulated in locals and written
        back when the loop exits (including on an exception): callbacks
        observing ``pending_events`` / ``events_processed`` *mid-run*
        see values as of the run's start, plus anything they scheduled
        or cancelled themselves.
        """
        queue = self._queue
        fired = 0
        unbounded = max_events is None
        pop = heappop  # localised: one global load per event adds up
        try:
            while queue:
                entry = queue[0]
                if entry[_STATUS] != _PENDING:
                    # Decrement immediately (not batched like the fired
                    # counters): a callback-triggered _compact() resets
                    # _cancelled_in_heap absolutely, and a deferred
                    # subtraction would double-count entries popped
                    # before the compaction.
                    pop(queue)
                    self._cancelled_in_heap -= 1
                    continue
                time = entry[_TIME]
                if time > until:
                    self.now = until
                    return
                if not unbounded and fired >= max_events:
                    return
                pop(queue)
                self.now = time
                entry[_STATUS] = _FIRED
                fired += 1
                args = entry[_ARGS]
                if args:
                    entry[_CALLBACK](*args)
                else:
                    entry[_CALLBACK]()
            if until != _INF and until > self.now:
                self.now = until
        finally:
            self._events_processed += fired
            self._live -= fired

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return self._live

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    @property
    def heap_size(self) -> int:
        """Physical heap length, including lazily-deleted entries.

        Exposed so tests (and the performance docs) can observe heap
        compaction; ``heap_size - pending_events`` is the number of
        cancelled entries still awaiting deletion.
        """
        return len(self._queue)

    @property
    def cancel_generation(self) -> int:
        """Total cancellations ever issued (monotone generation counter)."""
        return self._cancel_generation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}, pending={self.pending_events})"


class PeriodicTimer:
    """Repeatedly fires a callback; created via :meth:`Simulator.call_every`.

    Reschedules through the engine's handle-free fast path, so a
    periodic timer costs one heap entry per tick and nothing else.
    """

    __slots__ = ("_sim", "interval", "_callback", "_jitter", "_entry", "stopped", "fire_count")

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callback,
        *,
        first_at: Optional[float] = None,
        jitter: Callable[[], float] = None,
    ) -> None:
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._jitter = jitter
        self.stopped = False
        self.fire_count = 0
        start = first_at if first_at is not None else sim.now + interval
        require(start >= sim.now, "first_at must be >= now (%r < %r)", start, sim.now)
        self._entry = sim.schedule(start, self._tick)

    def _tick(self) -> None:
        if self.stopped:
            return
        self.fire_count += 1
        self._callback()
        if self.stopped:  # callback may stop the timer
            return
        delay = self.interval + (self._jitter() if self._jitter is not None else 0.0)
        if delay <= 0:
            delay = self.interval
        sim = self._sim
        self._entry = sim.schedule(sim.now + delay, self._tick)

    def stop(self) -> None:
        """Stop firing; pending tick is cancelled."""
        self.stopped = True
        if self._entry is not None:
            self._sim._cancel(self._entry)
