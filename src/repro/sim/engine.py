"""The discrete-event engine: a simulated clock and a two-tier event queue.

Design notes
------------
* Events are plain-list heap entries ``[time, seq, callback, args,
  status]`` in a binary heap — no closure is required on the hot path:
  callers pass positional ``args`` inline (``sim.schedule(t, fn, a,
  b)``) instead of wrapping them in a lambda.  The monotonically
  increasing sequence number breaks ties, so two events scheduled for
  the same instant fire in scheduling order — this keeps runs fully
  deterministic.
* The engine is *two-tier*: the binary heap holds timers and periodic
  control events, and an optionally attached :class:`DeliveryTimeline`
  (a calendar queue of fixed-width time buckets) holds network
  deliveries — by far the largest event population.  Scheduling a
  delivery is an O(1) bucket append instead of an O(log n) sift, and
  firing one is an amortized O(1) walk of a once-sorted bucket.  The
  run loop merges the two tiers by ``(time, seq)`` — both draw from the
  same sequence counter — so the global firing order is *identical* to
  a single heap's (pinned by the heap-vs-calendar equivalence tests).
* :class:`Timer` handles (returned by ``call_at`` / ``call_later``) are
  a ``list`` subclass: the handle *is* the heap entry, so a cancellable
  event costs one allocation, and the handle-free :meth:`Simulator.
  schedule` path costs one plain list.
* Cancellation is lazy: cancelling flips the entry's status word and
  bumps the engine's cancellation generation counter; the entry is
  skipped when popped.  When cancelled entries outnumber live ones the
  heap is compacted in place, so retry/audit churn cannot make the heap
  grow without bound.
* The engine keeps an O(1) live-event counter (``pending_events``)
  instead of scanning the heap.
* The scheduling and run loops are deliberately inlined (no helper
  calls, validation by plain comparison on the happy path): CPython
  frame setup dominates at millions of events per second.
* The engine knows nothing about networks or nodes; those live in
  :mod:`repro.sim.network`.
"""

from __future__ import annotations

import math
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Callable, List, Optional

from repro.util.validation import require

Callback = Callable[..., None]

_INF = math.inf

# Heap-entry slots: [_TIME, _SEQ, _CALLBACK, _ARGS, _STATUS(, _SIM)].
# The trailing _SIM slot exists only on Timer entries; the unique _SEQ
# guarantees heap comparisons never look past the first two slots.
_TIME = 0
_SEQ = 1
_CALLBACK = 2
_ARGS = 3
_STATUS = 4
_SIM = 5

# Status words.
_PENDING = 0
_FIRED = 1
_CANCELLED = 2

#: Compaction trigger: at least this many cancelled entries *and* more
#: cancelled than live entries in the heap.
_COMPACT_MIN = 64


class Timer(list):
    """Handle for a scheduled event; supports cancellation.

    Instances are returned by :meth:`Simulator.call_at` /
    :meth:`Simulator.call_later`.  Cancelling after the event has fired
    is a harmless no-op.  The handle *is* the engine's heap entry (a
    ``list`` subclass), so cancellable events cost a single allocation;
    code that never cancels should use :meth:`Simulator.schedule`,
    which allocates a plain list.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        """Absolute simulated time the event is (or was) due."""
        return self[_TIME]

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has taken effect."""
        return self[_STATUS] == _CANCELLED

    @property
    def fired(self) -> bool:
        """True once the callback has run."""
        return self[_STATUS] == _FIRED

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return self[_STATUS] == _PENDING

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self[_SIM]._cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("pending", "fired", "cancelled")[self[_STATUS]]
        return f"Timer(time={self[_TIME]!r}, {state})"


class DeliveryTimeline:
    """Calendar-queue tier for network deliveries.

    A ring of ``ring_size`` fixed-width time buckets; entries are plain
    lists ``[time, seq, src, dst, message]`` appended unsorted and
    sorted once when their bucket becomes *current* (the list-vs-list
    comparison stops at the unique ``seq``, so ties are broken exactly
    like heap entries).  A small heap of occupied bucket indices makes
    cursor advancement O(1) amortized regardless of how sparse the
    timeline is — no empty-bucket scans.

    Invariants the engine and network rely on:

    * entry times are ``>= sim.now`` at insertion, so every occupied
      bucket index is ``>= int(now / width)`` and the ring (which spans
      ``ring_size`` buckets from there) never aliases two occupied
      indices to one slot — the network falls back to the heap tier for
      the rare delivery scheduled beyond the horizon;
    * an insertion into the bucket currently being drained lands
      *behind* the drain cursor via ``insort`` (its seq is larger than
      every already-scheduled entry's, and its time is ``>= now``), so
      in-order draining survives re-entrant scheduling;
    * an insertion into an already-passed *empty gap* bucket (possible
      when a timer callback fires inside a gap the cursor skipped over)
      rewinds the cursor — the untouched current bucket is pushed back
      into the ring.
    """

    __slots__ = (
        "width",
        "inv_width",
        "horizon",
        "_mask",
        "_ring",
        "_order",
        "cur",
        "cur_pos",
        "cur_idx",
        "count",
    )

    def __init__(self, width: float, ring_size: int = 512) -> None:
        require(width > 0, "bucket width must be > 0, got %r", width)
        require(
            ring_size >= 2 and ring_size & (ring_size - 1) == 0,
            "ring_size must be a power of two >= 2, got %r",
            ring_size,
        )
        self.width = float(width)
        self.inv_width = 1.0 / self.width
        #: deliveries due more than ``horizon`` buckets past ``now``
        #: cannot be held by the ring (slot aliasing) — callers route
        #: them through the heap tier instead.
        self.horizon = ring_size - 1
        self._mask = ring_size - 1
        self._ring: List[list] = [[] for _ in range(ring_size)]
        self._order: List[int] = []  # heap of occupied bucket indices
        self.cur: list = []  # the bucket being drained (sorted)
        self.cur_pos = 0  # next undrained position in ``cur``
        self.cur_idx = -1  # bucket index of ``cur``
        self.count = 0  # pending entries across ring + cur

    def add(self, entry: list, base_idx: int) -> bool:
        """Insert ``entry`` (``[time, seq, src, dst, message]``).

        ``base_idx`` is ``int(now * inv_width)``.  Returns False when
        the entry lies beyond the ring horizon — the caller must then
        schedule it on the heap tier instead.  The network inlines the
        common branch of this method on its send path; this method is
        the reference implementation and the rare-branch handler.
        """
        idx = int(entry[0] * self.inv_width)
        if idx - base_idx >= self.horizon:
            return False
        cur_idx = self.cur_idx
        if idx > cur_idx:
            slot = self._ring[idx & self._mask]
            if not slot:
                heappush(self._order, idx)
            slot.append(entry)
        elif idx == cur_idx:
            # Lands in the bucket being drained: its seq exceeds every
            # existing entry's and its time is >= now, so it sorts in at
            # or after the cursor.
            insort(self.cur, entry, self.cur_pos)
        else:
            # The cursor skipped this (then-empty) bucket; rewind.  The
            # current bucket cannot have been touched yet: an entry of
            # it having fired would put ``now`` (and hence ``entry``)
            # past this bucket.
            if self.cur_pos < len(self.cur):
                self._ring[cur_idx & self._mask] = self.cur
                heappush(self._order, cur_idx)
            self.cur = []
            self.cur_pos = 0
            self.cur_idx = idx - 1
            slot = self._ring[idx & self._mask]
            if not slot:
                heappush(self._order, idx)
            slot.append(entry)
        self.count += 1
        return True

    def advance(self) -> bool:
        """Point ``cur``/``cur_pos`` at the next pending entry.

        Returns False when the timeline is empty.  Detaches the next
        occupied bucket from the ring and sorts it exactly once.
        """
        while self.cur_pos >= len(self.cur):
            order = self._order
            if not order:
                return False
            idx = heappop(order)
            slot = idx & self._mask
            bucket = self._ring[slot]
            self._ring[slot] = []
            bucket.sort()
            self.cur = bucket
            self.cur_pos = 0
            self.cur_idx = idx
        return True

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeliveryTimeline(width={self.width!r}, pending={self.count}, "
            f"cur_idx={self.cur_idx})"
        )


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.call_later(2.0, lambda: order.append("b"))
    >>> _ = sim.call_later(1.0, lambda: order.append("a"))
    >>> sim.run()
    >>> order, sim.now
    (['a', 'b'], 2.0)
    """

    __slots__ = (
        "now",
        "_queue",
        "_sequence",
        "_events_processed",
        "_live",
        "_cancelled_in_heap",
        "_cancel_generation",
        "_timeline",
        "_drain",
    )

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue: List[list] = []
        self._sequence = 0
        self._events_processed = 0
        self._live = 0  # O(1) pending-event counter (heap + timeline)
        self._cancelled_in_heap = 0  # cancelled entries awaiting lazy deletion
        self._cancel_generation = 0  # total cancellations ever issued
        self._timeline: Optional[DeliveryTimeline] = None
        self._drain: Optional[Callable[[float, float], int]] = None

    # ------------------------------------------------------------------
    # the delivery tier
    # ------------------------------------------------------------------
    def attach_timeline(
        self, timeline: DeliveryTimeline, drain: Callable[[float, float], int]
    ) -> None:
        """Attach the calendar-queue delivery tier (at most one).

        ``drain(until, budget)`` must fire pending timeline entries in
        ``(time, seq)`` order — setting ``now`` per entry and yielding
        back when a live heap event preempts, an entry is due past
        ``until``, ``budget`` entries have fired, or the timeline is
        exhausted — and return how many entries it fired.  The network
        owns the drain so delivery semantics stay out of the engine.
        """
        require(self._timeline is None, "a delivery timeline is already attached")
        require(self.now >= 0.0, "delivery timeline requires a non-negative clock")
        self._timeline = timeline
        self._drain = drain

    @property
    def timeline(self) -> Optional[DeliveryTimeline]:
        """The attached delivery timeline, if any."""
        return self._timeline

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: float, callback: Callback, *args) -> list:
        """Hot-path scheduling: no cancellation handle is allocated.

        ``callback`` is invoked as ``callback(*args)`` at absolute
        simulated ``time``; the args are stored inline in the heap entry
        so callers need no closure.  Returns the raw heap entry (opaque;
        pass it to :meth:`cancel_entry` if cancellation is ever needed).
        """
        if not (self.now <= time < _INF):  # also rejects NaN
            raise ValueError(
                f"event time must be finite and >= now={self.now!r}, got {time!r}"
            )
        entry = [time, self._sequence, callback, args, _PENDING]
        self._sequence += 1
        heappush(self._queue, entry)
        self._live += 1
        return entry

    def call_at(self, time: float, callback: Callback, *args) -> Timer:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Scheduling in the past raises — that is always a logic error in
        protocol code (e.g. a negative latency).
        """
        if not (self.now <= time < _INF):
            require(time >= self.now, "cannot schedule in the past (%r < now=%r)", time, self.now)
            require(math.isfinite(time), "event time must be finite, got %r", time)
        timer = Timer((time, self._sequence, callback, args, _PENDING, self))
        self._sequence += 1
        heappush(self._queue, timer)
        self._live += 1
        return timer

    def call_later(self, delay: float, callback: Callback, *args) -> Timer:
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            require(delay >= 0, "delay must be >= 0, got %r", delay)
        time = self.now + delay
        if not time < _INF:  # also rejects NaN
            require(math.isfinite(time), "event time must be finite, got %r", time)
        timer = Timer((time, self._sequence, callback, args, _PENDING, self))
        self._sequence += 1
        heappush(self._queue, timer)
        self._live += 1
        return timer

    def call_every(
        self,
        interval: float,
        callback: Callback,
        *,
        first_at: Optional[float] = None,
        jitter: Callable[[], float] = None,
    ) -> "PeriodicTimer":
        """Schedule ``callback`` every ``interval`` seconds.

        ``first_at`` sets the absolute time of the first invocation
        (defaults to ``now + interval``).  ``jitter``, if given, is
        called before each rescheduling and its return value is added to
        the interval — used to desynchronise gossip periods across
        nodes, as would naturally happen on a real testbed.
        """
        require(interval > 0, "interval must be > 0, got %r", interval)
        return PeriodicTimer(self, interval, callback, first_at=first_at, jitter=jitter)

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def cancel_entry(self, entry: list) -> None:
        """Cancel a raw entry returned by :meth:`schedule`."""
        self._cancel(entry)

    def _cancel(self, entry: list) -> None:
        if entry[_STATUS] != _PENDING:
            return
        entry[_STATUS] = _CANCELLED
        entry[_CALLBACK] = None  # release references eagerly
        entry[_ARGS] = None
        self._live -= 1
        self._cancelled_in_heap += 1
        self._cancel_generation += 1
        # Compact when cancelled entries are the majority of the
        # *physical* heap.  len(queue) is always exact, unlike the live
        # counter, whose updates run() batches — comparing against
        # self._live here would leave compaction suppressed for the
        # whole of a long run() call.
        if (
            self._cancelled_in_heap >= _COMPACT_MIN
            and 2 * self._cancelled_in_heap > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (in place: the queue
        list identity is preserved for aliases held by the run loop)."""
        self._queue[:] = [e for e in self._queue if e[_STATUS] == _PENDING]
        heapify(self._queue)
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next event.  Returns False when no live event remains."""
        queue = self._queue
        timeline = self._timeline
        if timeline is not None and timeline.count and (
            timeline.cur_pos < len(timeline.cur) or timeline.advance()
        ):
            d = timeline.cur[timeline.cur_pos]
            while queue:
                head = queue[0]
                if head[_STATUS] == _PENDING:
                    break
                heappop(queue)
                self._cancelled_in_heap -= 1
            if not queue or d[_TIME] < queue[0][_TIME] or (
                d[_TIME] == queue[0][_TIME] and d[_SEQ] < queue[0][_SEQ]
            ):
                fired = self._drain(_INF, 1)
                timeline.count -= fired
                self._live -= fired
                self._events_processed += fired
                return fired > 0
        while queue:
            entry = heappop(queue)
            if entry[_STATUS] != _PENDING:
                self._cancelled_in_heap -= 1
                continue
            self.now = entry[_TIME]
            self._live -= 1
            entry[_STATUS] = _FIRED
            self._events_processed += 1
            args = entry[_ARGS]
            if args:
                entry[_CALLBACK](*args)
            else:
                entry[_CALLBACK]()
            return True
        return False

    def run(self, *, until: float = math.inf, max_events: int = None) -> None:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` have *fired*.

        ``max_events`` counts events whose callback actually ran —
        cancelled timers skipped by lazy deletion do not count towards
        the budget.  When stopping at ``until``, the clock is advanced
        exactly to ``until`` so that a subsequent ``run`` resumes
        cleanly.

        The fired/live counters are accumulated in locals and written
        back when the loop exits (including on an exception): callbacks
        observing ``pending_events`` / ``events_processed`` *mid-run*
        see values as of the run's start, plus anything they scheduled
        or cancelled themselves.

        With a delivery timeline attached the loop merges the two tiers
        by ``(time, seq)``: runs of timeline entries due before the next
        live heap event are handed to the drain in one call, so the
        per-event engine overhead is paid per *batch* of deliveries and
        per heap event, never per delivered message.
        """
        if self._timeline is not None:
            self._run_two_tier(until=until, max_events=max_events)
            return
        queue = self._queue
        fired = 0
        unbounded = max_events is None
        pop = heappop  # localised: one global load per event adds up
        try:
            while queue:
                entry = queue[0]
                if entry[_STATUS] != _PENDING:
                    # Decrement immediately (not batched like the fired
                    # counters): a callback-triggered _compact() resets
                    # _cancelled_in_heap absolutely, and a deferred
                    # subtraction would double-count entries popped
                    # before the compaction.
                    pop(queue)
                    self._cancelled_in_heap -= 1
                    continue
                time = entry[_TIME]
                if time > until:
                    self.now = until
                    return
                if not unbounded and fired >= max_events:
                    return
                pop(queue)
                self.now = time
                entry[_STATUS] = _FIRED
                fired += 1
                args = entry[_ARGS]
                if args:
                    entry[_CALLBACK](*args)
                else:
                    entry[_CALLBACK]()
            if until != _INF and until > self.now:
                self.now = until
        finally:
            self._events_processed += fired
            self._live -= fired

    def _run_two_tier(self, *, until: float, max_events: Optional[int]) -> None:
        """The run loop with the calendar-queue delivery tier attached.

        Same contract as :meth:`run`.  Heap events fire here; timeline
        entries fire inside the attached drain, which yields back
        whenever a live heap event is due first.
        """
        queue = self._queue
        timeline = self._timeline
        drain = self._drain
        fired = 0
        unbounded = max_events is None
        pop = heappop
        try:
            while True:
                head = None
                while queue:
                    entry = queue[0]
                    if entry[_STATUS] == _PENDING:
                        head = entry
                        break
                    pop(queue)
                    self._cancelled_in_heap -= 1
                if timeline.count and (
                    timeline.cur_pos < len(timeline.cur) or timeline.advance()
                ):
                    d = timeline.cur[timeline.cur_pos]
                    time = d[_TIME]
                    if head is None or time < head[_TIME] or (
                        time == head[_TIME] and d[_SEQ] < head[_SEQ]
                    ):
                        if time > until:
                            self.now = until
                            return
                        if not unbounded and fired >= max_events:
                            return
                        n = drain(until, _INF if unbounded else max_events - fired)
                        fired += n
                        timeline.count -= n
                        continue
                if head is None:
                    break
                time = head[_TIME]
                if time > until:
                    self.now = until
                    return
                if not unbounded and fired >= max_events:
                    return
                pop(queue)
                self.now = time
                head[_STATUS] = _FIRED
                fired += 1
                args = head[_ARGS]
                if args:
                    head[_CALLBACK](*args)
                else:
                    head[_CALLBACK]()
            if until != _INF and until > self.now:
                self.now = until
        finally:
            self._events_processed += fired
            self._live -= fired

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still queued (O(1))."""
        return self._live

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    @property
    def heap_size(self) -> int:
        """Physical heap length, including lazily-deleted entries.

        Exposed so tests (and the performance docs) can observe heap
        compaction; ``heap_size - pending_events`` is the number of
        cancelled entries still awaiting deletion.
        """
        return len(self._queue)

    @property
    def cancel_generation(self) -> int:
        """Total cancellations ever issued (monotone generation counter)."""
        return self._cancel_generation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}, pending={self.pending_events})"


class PeriodicTimer:
    """Repeatedly fires a callback; created via :meth:`Simulator.call_every`.

    Reschedules through the engine's handle-free fast path, so a
    periodic timer costs one heap entry per tick and nothing else.
    """

    __slots__ = ("_sim", "interval", "_callback", "_jitter", "_entry", "stopped", "fire_count")

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callback,
        *,
        first_at: Optional[float] = None,
        jitter: Callable[[], float] = None,
    ) -> None:
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._jitter = jitter
        self.stopped = False
        self.fire_count = 0
        start = first_at if first_at is not None else sim.now + interval
        require(start >= sim.now, "first_at must be >= now (%r < %r)", start, sim.now)
        self._entry = sim.schedule(start, self._tick)

    def _tick(self) -> None:
        if self.stopped:
            return
        self.fire_count += 1
        self._callback()
        if self.stopped:  # callback may stop the timer
            return
        delay = self.interval + (self._jitter() if self._jitter is not None else 0.0)
        if delay <= 0:
            delay = self.interval
        sim = self._sim
        self._entry = sim.schedule(sim.now + delay, self._tick)

    def stop(self) -> None:
        """Stop firing; pending tick is cancelled."""
        self.stopped = True
        if self._entry is not None:
            self._sim._cancel(self._entry)
