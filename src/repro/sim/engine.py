"""The discrete-event engine: a simulated clock and an event queue.

Design notes
------------
* Events are ``(time, sequence, callback)`` triples in a binary heap.
  The monotonically increasing sequence number breaks ties, so two
  events scheduled for the same instant fire in scheduling order —
  this keeps runs fully deterministic.
* Callbacks are plain callables taking no arguments; state is captured
  by closure or ``functools.partial``.  Cancellation is handled with
  lightweight :class:`Timer` handles (lazy deletion: a cancelled event
  stays in the heap but is skipped when popped).
* The engine knows nothing about networks or nodes; those live in
  :mod:`repro.sim.network`.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional

from repro.util.validation import require

Callback = Callable[[], None]


class Timer:
    """Handle for a scheduled event; supports cancellation.

    Instances are returned by :meth:`Simulator.call_at` /
    :meth:`Simulator.call_later`.  Cancelling after the event has fired
    is a harmless no-op.
    """

    __slots__ = ("time", "_callback", "cancelled", "fired")

    def __init__(self, time: float, callback: Callback) -> None:
        self.time = time
        self._callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self.cancelled = True
        self._callback = None  # release references eagerly

    @property
    def active(self) -> bool:
        """True while the timer is pending (not fired, not cancelled)."""
        return not self.cancelled and not self.fired

    def _fire(self) -> None:
        if self.cancelled:
            return
        callback = self._callback
        self.fired = True
        self._callback = None
        if callback is not None:
            callback()


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.call_later(2.0, lambda: order.append("b"))
    >>> _ = sim.call_later(1.0, lambda: order.append("a"))
    >>> sim.run()
    >>> order, sim.now
    (['a', 'b'], 2.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue: List = []
        self._sequence = 0
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callback) -> Timer:
        """Schedule ``callback`` at absolute simulated ``time``.

        Scheduling in the past raises — that is always a logic error in
        protocol code (e.g. a negative latency).
        """
        require(time >= self.now, "cannot schedule in the past (%r < now=%r)", time, self.now)
        require(math.isfinite(time), "event time must be finite, got %r", time)
        timer = Timer(time, callback)
        self._sequence += 1
        heapq.heappush(self._queue, (time, self._sequence, timer))
        return timer

    def call_later(self, delay: float, callback: Callback) -> Timer:
        """Schedule ``callback`` after ``delay`` simulated seconds."""
        require(delay >= 0, "delay must be >= 0, got %r", delay)
        return self.call_at(self.now + delay, callback)

    def call_every(
        self,
        interval: float,
        callback: Callback,
        *,
        first_at: Optional[float] = None,
        jitter: Callable[[], float] = None,
    ) -> "PeriodicTimer":
        """Schedule ``callback`` every ``interval`` seconds.

        ``first_at`` sets the absolute time of the first invocation
        (defaults to ``now + interval``).  ``jitter``, if given, is
        called before each rescheduling and its return value is added to
        the interval — used to desynchronise gossip periods across
        nodes, as would naturally happen on a real testbed.
        """
        require(interval > 0, "interval must be > 0, got %r", interval)
        return PeriodicTimer(self, interval, callback, first_at=first_at, jitter=jitter)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            time, _seq, timer = heapq.heappop(self._queue)
            if timer.cancelled:
                continue
            self.now = time
            self._events_processed += 1
            timer._fire()
            return True
        return False

    def run(self, *, until: float = math.inf, max_events: int = None) -> None:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` have been processed.

        When stopping at ``until``, the clock is advanced exactly to
        ``until`` so that a subsequent ``run`` resumes cleanly.
        """
        processed = 0
        while self._queue:
            next_time = self._peek_time()
            if next_time is None:
                break
            if next_time > until:
                self.now = until
                return
            if max_events is not None and processed >= max_events:
                return
            self.step()
            processed += 1
        if math.isfinite(until) and until > self.now:
            self.now = until

    def _peek_time(self) -> Optional[float]:
        while self._queue:
            time, _seq, timer = self._queue[0]
            if timer.cancelled:
                heapq.heappop(self._queue)
                continue
            return time
        return None

    @property
    def pending_events(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for _t, _s, timer in self._queue if not timer.cancelled)

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}, pending={self.pending_events})"


class PeriodicTimer:
    """Repeatedly fires a callback; created via :meth:`Simulator.call_every`."""

    __slots__ = ("_sim", "interval", "_callback", "_jitter", "_timer", "stopped", "fire_count")

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callback,
        *,
        first_at: Optional[float] = None,
        jitter: Callable[[], float] = None,
    ) -> None:
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._jitter = jitter
        self.stopped = False
        self.fire_count = 0
        start = first_at if first_at is not None else sim.now + interval
        self._timer = sim.call_at(start, self._tick)

    def _tick(self) -> None:
        if self.stopped:
            return
        self.fire_count += 1
        self._callback()
        if self.stopped:  # callback may stop the timer
            return
        delay = self.interval + (self._jitter() if self._jitter is not None else 0.0)
        if delay <= 0:
            delay = self.interval
        self._timer = self._sim.call_later(delay, self._tick)

    def stop(self) -> None:
        """Stop firing; pending tick is cancelled."""
        self.stopped = True
        if self._timer is not None:
            self._timer.cancel()
