"""Network latency models.

PlanetLab links have heterogeneous delays; the paper's protocol is
timing-sensitive (chunks must be proposed within one gossip period of
reception, verifications run on timeouts), so latency is a first-class
model here rather than a constant.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.util.validation import require, require_non_negative

NodeId = int


class LatencyModel(abc.ABC):
    """Draws the one-way delay for a message from ``src`` to ``dst``."""

    @abc.abstractmethod
    def sample(self, src: NodeId, dst: NodeId) -> float:
        """One-way latency in seconds for this transmission."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` seconds."""

    def __init__(self, delay: float = 0.05) -> None:
        self.delay = require_non_negative(delay, "delay")

    def sample(self, src: NodeId, dst: NodeId) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]`` per message."""

    def __init__(self, rng: np.random.Generator, low: float = 0.02, high: float = 0.12) -> None:
        require_non_negative(low, "low")
        require(high >= low, "high (%r) must be >= low (%r)", high, low)
        self._rng = rng
        self.low = low
        self.high = high

    def sample(self, src: NodeId, dst: NodeId) -> float:
        return float(self._rng.uniform(self.low, self.high))


class LogNormalLatency(LatencyModel):
    """Heavy-tailed latency, the common fit for wide-area RTT samples.

    ``median`` is the median one-way delay and ``sigma`` the log-space
    dispersion; samples are optionally capped at ``cap`` to avoid
    unbounded tail events destabilising small experiments.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        median: float = 0.05,
        sigma: float = 0.5,
        cap: float = 2.0,
    ) -> None:
        self._rng = rng
        self.median = require_non_negative(median, "median")
        self.sigma = require_non_negative(sigma, "sigma")
        self.cap = require_non_negative(cap, "cap")

    def sample(self, src: NodeId, dst: NodeId) -> float:
        value = float(self._rng.lognormal(mean=np.log(self.median), sigma=self.sigma))
        return min(value, self.cap)


class PerNodeLatency(LatencyModel):
    """Adds per-node access delays on top of a base model.

    Models PlanetLab's slow hosts: a message's delay is
    ``base.sample() + access[src] + access[dst]``.  Nodes without an
    entry have zero access delay.
    """

    def __init__(self, base: LatencyModel, access_delay: dict = None) -> None:
        self.base = base
        self.access_delay = dict(access_delay or {})

    def set_access_delay(self, node: NodeId, delay: float) -> None:
        """Set the access-link delay for ``node``."""
        self.access_delay[node] = require_non_negative(delay, "delay")

    def sample(self, src: NodeId, dst: NodeId) -> float:
        return (
            self.base.sample(src, dst)
            + self.access_delay.get(src, 0.0)
            + self.access_delay.get(dst, 0.0)
        )
