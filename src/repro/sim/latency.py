"""Network latency models.

PlanetLab links have heterogeneous delays; the paper's protocol is
timing-sensitive (chunks must be proposed within one gossip period of
reception, verifications run on timeouts), so latency is a first-class
model here rather than a constant.

Performance note
----------------
The stochastic models draw *blocks* of samples from numpy and hand them
out one at a time, refilling on exhaustion.  Numpy fills an array from
the exact same bit stream as repeated scalar draws, so the sample
sequence — and therefore every seeded experiment — is bit-for-bit
identical to per-call sampling while the per-send cost drops from one
RNG call to a list index.  The block buffers assume the model's
parameters are fixed after construction (they are everywhere in this
repo); mutate the generator or parameters and the pre-drawn block would
go stale.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.util.validation import require, require_non_negative

NodeId = int

#: Samples pre-drawn per refill of a stochastic model's block buffer.
SAMPLE_BLOCK = 1024


class LatencyModel(abc.ABC):
    """Draws the one-way delay for a message from ``src`` to ``dst``."""

    @abc.abstractmethod
    def sample(self, src: NodeId, dst: NodeId) -> float:
        """One-way latency in seconds for this transmission."""

    def delivery_window(self) -> tuple:
        """``(min_delay, span)`` hint for the delivery-plane scheduler.

        ``min_delay`` must be a *lower bound* on any delay the model can
        produce (the network only enables same-bucket batch dispatch
        when the bucket width fits under it), and ``span`` the typical
        spread of delays (used to size the calendar-queue buckets).
        Unknown models return ``(0.0, 0.0)``: the timeline still works,
        just with conservative defaults and batching disabled.
        """
        return (0.0, 0.0)


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` seconds."""

    def __init__(self, delay: float = 0.05) -> None:
        self.delay = require_non_negative(delay, "delay")

    def sample(self, src: NodeId, dst: NodeId) -> float:
        return self.delay

    def delivery_window(self) -> tuple:
        return (self.delay, 0.0)


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]`` per message."""

    def __init__(self, rng: np.random.Generator, low: float = 0.02, high: float = 0.12) -> None:
        require_non_negative(low, "low")
        require(high >= low, "high (%r) must be >= low (%r)", high, low)
        self._rng = rng
        self.low = low
        self.high = high
        self._block: list = []
        self._next = 0

    def sample(self, src: NodeId, dst: NodeId) -> float:
        i = self._next
        block = self._block
        if i >= len(block):
            block = self._block = self._rng.uniform(self.low, self.high, SAMPLE_BLOCK).tolist()
            i = 0
        self._next = i + 1
        return block[i]

    def delivery_window(self) -> tuple:
        return (self.low, self.high - self.low)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed latency, the common fit for wide-area RTT samples.

    ``median`` is the median one-way delay and ``sigma`` the log-space
    dispersion; samples are optionally capped at ``cap`` to avoid
    unbounded tail events destabilising small experiments.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        median: float = 0.05,
        sigma: float = 0.5,
        cap: float = 2.0,
    ) -> None:
        self._rng = rng
        self.median = require_non_negative(median, "median")
        self.sigma = require_non_negative(sigma, "sigma")
        self.cap = require_non_negative(cap, "cap")
        self._block: list = []
        self._next = 0

    def sample(self, src: NodeId, dst: NodeId) -> float:
        i = self._next
        block = self._block
        if i >= len(block):
            raw = self._rng.lognormal(
                mean=np.log(self.median), sigma=self.sigma, size=SAMPLE_BLOCK
            )
            block = self._block = np.minimum(raw, self.cap).tolist()
            i = 0
        self._next = i + 1
        return block[i]

    def delivery_window(self) -> tuple:
        # A lognormal's infimum is 0: batching stays off, and the median
        # (not the cap) sizes the buckets — the tail is rare by design.
        return (0.0, self.median)


class PerNodeLatency(LatencyModel):
    """Adds per-node access delays on top of a base model.

    Models PlanetLab's slow hosts: a message's delay is
    ``base.sample() + access[src] + access[dst]``.  Nodes without an
    entry have zero access delay.
    """

    def __init__(self, base: LatencyModel, access_delay: dict = None) -> None:
        self.base = base
        self.access_delay = dict(access_delay or {})

    def set_access_delay(self, node: NodeId, delay: float) -> None:
        """Set the access-link delay for ``node``."""
        self.access_delay[node] = require_non_negative(delay, "delay")

    def sample(self, src: NodeId, dst: NodeId) -> float:
        return (
            self.base.sample(src, dst)
            + self.access_delay.get(src, 0.0)
            + self.access_delay.get(dst, 0.0)
        )

    def delivery_window(self) -> tuple:
        # Access delays only add: the base minimum stays a lower bound.
        base_min, base_span = self.base.delivery_window()
        return (base_min, base_span)
