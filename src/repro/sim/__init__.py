"""Discrete-event simulation substrate.

The paper evaluates LiFTinG on PlanetLab (300 nodes, UDP data path, TCP
audits, ~4 % message loss, heterogeneous links).  This package is the
testbed substitute: a deterministic discrete-event simulator with

* an event engine with a simulated clock and cancellable timers
  (:mod:`repro.sim.engine`),
* lossy-datagram and reliable-stream channel models with pluggable
  latency/loss models and per-node upload-bandwidth throttling
  (:mod:`repro.sim.network`),
* byte-level message accounting for the overhead measurements of
  Table 5 (:mod:`repro.sim.trace`).

Protocol code is transport-agnostic: the same node objects also run on
the asyncio runtime in :mod:`repro.runtime`.
"""

from repro.sim.bandwidth import UploadLink
from repro.sim.engine import Simulator, Timer
from repro.sim.latency import ConstantLatency, LatencyModel, LogNormalLatency, UniformLatency
from repro.sim.loss import BernoulliLoss, LossModel, NoLoss, PerNodeLoss
from repro.sim.network import Endpoint, Network, Transport
from repro.sim.trace import MessageTrace

__all__ = [
    "BernoulliLoss",
    "ConstantLatency",
    "Endpoint",
    "LatencyModel",
    "LogNormalLatency",
    "LossModel",
    "MessageTrace",
    "Network",
    "NoLoss",
    "PerNodeLoss",
    "Simulator",
    "Timer",
    "Transport",
    "UniformLatency",
    "UploadLink",
]
