"""The simulated network: lossy datagrams and reliable streams.

The dissemination and direct-verification path runs over UDP (cheap,
lossy); local-history audits run over TCP (reliable, §5.3).  The network
object models both on top of the same latency models:

* ``Transport.UDP`` — subject to the loss model; one latency sample.
* ``Transport.TCP`` — never lost; pays an extra connection overhead the
  first time and per-message latency inflated by ``tcp_latency_factor``
  (acknowledgement round trips).

Every transmission is serialised through the sender's
:class:`~repro.sim.bandwidth.UploadLink` and accounted in the
:class:`~repro.sim.trace.MessageTrace`.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, Optional, Protocol

from repro.sim.bandwidth import UploadLink
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.loss import LossModel, NoLoss
from repro.sim.trace import MessageTrace
from repro.util.validation import require

NodeId = int


class Transport(enum.Enum):
    """Which channel a message travels on."""

    UDP = "udp"
    TCP = "tcp"


class Endpoint(Protocol):
    """Anything that can receive messages from the network."""

    node_id: NodeId

    def on_message(self, src: NodeId, message: object) -> None:
        """Handle a delivered message."""


def default_wire_size(message: object) -> int:
    """Wire size of a message: its ``wire_size()`` if defined, else 64 B."""
    sizer = getattr(message, "wire_size", None)
    if sizer is None:
        return 64
    return int(sizer())


class Network:
    """Connects registered endpoints through modelled channels.

    Parameters
    ----------
    sim:
        The discrete-event engine driving delivery times.
    latency:
        One-way delay model (defaults to a 50 ms constant).
    loss:
        Datagram loss model (defaults to no loss).
    trace:
        Byte/message accounting sink (a fresh one is created if omitted).
    tcp_latency_factor:
        Multiplier on the latency sample for TCP messages (handshake +
        acknowledgement round trips).  The paper's audits tolerate this
        because they are sporadic.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        trace: Optional[MessageTrace] = None,
        tcp_latency_factor: float = 2.0,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency()
        self.loss = loss if loss is not None else NoLoss()
        self.trace = trace if trace is not None else MessageTrace()
        self.tcp_latency_factor = tcp_latency_factor
        self._endpoints: Dict[NodeId, Endpoint] = {}
        self._links: Dict[NodeId, UploadLink] = {}
        self._disconnected: set = set()
        self.wire_size: Callable[[object], int] = default_wire_size

    # ------------------------------------------------------------------
    # membership of the network fabric
    # ------------------------------------------------------------------
    def register(self, endpoint: Endpoint, upload_rate: float = math.inf) -> None:
        """Attach ``endpoint``; duplicate ids are configuration errors."""
        node_id = endpoint.node_id
        require(node_id not in self._endpoints, "node %s already registered", node_id)
        self._endpoints[node_id] = endpoint
        self._links[node_id] = UploadLink(upload_rate)

    def set_upload_rate(self, node: NodeId, rate_bytes_per_s: float) -> None:
        """Replace the upload capacity of ``node``."""
        require(node in self._links, "unknown node %s", node)
        self._links[node] = UploadLink(rate_bytes_per_s)

    def link(self, node: NodeId) -> UploadLink:
        """The upload link of ``node``."""
        return self._links[node]

    def disconnect(self, node: NodeId) -> None:
        """Expel ``node`` from the fabric: it can no longer send or receive.

        This is the enforcement end of LiFTinG — managers call it when a
        node's score crosses the expulsion threshold or it fails an
        entropy audit.
        """
        self._disconnected.add(node)

    def reconnect(self, node: NodeId) -> None:
        """Undo :meth:`disconnect` (used by churn experiments)."""
        self._disconnected.discard(node)

    def is_connected(self, node: NodeId) -> bool:
        """True if ``node`` is registered and not expelled."""
        return node in self._endpoints and node not in self._disconnected

    @property
    def node_ids(self):
        """All registered node ids (including disconnected ones)."""
        return list(self._endpoints.keys())

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self,
        src: NodeId,
        dst: NodeId,
        message: object,
        transport: Transport = Transport.UDP,
    ) -> bool:
        """Send ``message`` from ``src`` to ``dst``.

        Returns True if the message was put on the wire (it may still be
        lost in flight on UDP).  Sends from or to expelled nodes are
        silently dropped — an expelled node's packets no longer enter
        the fabric, but we return False so callers can observe it.
        """
        if src in self._disconnected:
            return False
        require(src in self._endpoints, "unknown sender %s", src)
        if dst not in self._endpoints:
            return False

        size = self.wire_size(message)
        departure = self._links[src].transmit(self.sim.now, size)
        self.trace.record_sent(src, message, size)

        if transport is Transport.UDP and self.loss.is_lost(src, dst):
            self.trace.record_lost(src, dst, message)
            return True

        delay = self.latency.sample(src, dst)
        if transport is Transport.TCP:
            delay *= self.tcp_latency_factor
        arrival = max(departure, self.sim.now) + delay
        self.sim.call_at(arrival, lambda: self._deliver(src, dst, message))
        return True

    def _deliver(self, src: NodeId, dst: NodeId, message: object) -> None:
        if dst in self._disconnected or src in self._disconnected:
            # Expulsion takes effect immediately: in-flight traffic of an
            # expelled node is discarded at delivery time.
            return
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            return
        self.trace.record_delivered(dst, message)
        endpoint.on_message(src, message)
