"""The simulated network: lossy datagrams and reliable streams.

The dissemination and direct-verification path runs over UDP (cheap,
lossy); local-history audits run over TCP (reliable, §5.3).  The network
object models both on top of the same latency models:

* ``Transport.UDP`` — subject to the loss model; one latency sample.
* ``Transport.TCP`` — never lost; pays an extra connection overhead the
  first time and per-message latency inflated by ``tcp_latency_factor``
  (acknowledgement round trips).

Every transmission is serialised through the sender's
:class:`~repro.sim.bandwidth.UploadLink` and accounted in the
:class:`~repro.sim.trace.MessageTrace`.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, Optional, Protocol

_INF = math.inf

from heapq import heappush

from repro.sim.bandwidth import UploadLink
from repro.sim.engine import Simulator
from repro.sim.engine import _PENDING  # heap-entry status word (see below)
from repro.sim.latency import SAMPLE_BLOCK, ConstantLatency, LatencyModel, UniformLatency
from repro.sim.loss import LossModel, NoLoss, PerNodeLoss
from repro.sim.trace import MessageTrace
from repro.util.validation import require

NodeId = int


class Transport(enum.Enum):
    """Which channel a message travels on."""

    UDP = "udp"
    TCP = "tcp"


# Module-level aliases: enum member access (`Transport.UDP`) is an
# attribute lookup per use, and `send` runs a hundred thousand times per
# simulated second.
_UDP = Transport.UDP
_TCP = Transport.TCP


class Endpoint(Protocol):
    """Anything that can receive messages from the network."""

    node_id: NodeId

    def on_message(self, src: NodeId, message: object) -> None:
        """Handle a delivered message."""


def default_wire_size(message: object) -> int:
    """Wire size of a message: its ``wire_size()`` if defined, else 64 B."""
    sizer = getattr(message, "wire_size", None)
    if sizer is None:
        return 64
    return int(sizer())


def _size_strategy(cls: type, message: object):
    """Per-class sizing strategy for the default wire-size function.

    Returns an ``int`` for classes whose size is payload-independent
    (they declare ``WIRE_SIZE_FIXED = True``) and for classes without a
    sizer (64-byte default); variable-size classes map to their unbound
    ``wire_size`` function.  Caching this per message *type* turns the
    per-send cost into one dict lookup for the common fixed-size
    verification/reputation messages, and saves the per-instance
    attribute probe for the rest.
    """
    sizer = getattr(cls, "wire_size", None)
    if sizer is None:
        return 64
    if getattr(cls, "WIRE_SIZE_FIXED", False):
        return int(message.wire_size())
    return sizer


class Network:
    """Connects registered endpoints through modelled channels.

    Parameters
    ----------
    sim:
        The discrete-event engine driving delivery times.
    latency:
        One-way delay model (defaults to a 50 ms constant).
    loss:
        Datagram loss model (defaults to no loss).
    trace:
        Byte/message accounting sink (a fresh one is created if omitted).
    tcp_latency_factor:
        Multiplier on the latency sample for TCP messages (handshake +
        acknowledgement round trips).  The paper's audits tolerate this
        because they are sporadic.

    The ``latency`` and ``loss`` models are fixed at construction (their
    *state* may be mutated — ``set_node_loss`` etc. — but the attributes
    must not be rebound afterwards: the send fast path specialises on
    their concrete types once, here in ``__init__``).
    """

    __slots__ = (
        "sim",
        "latency",
        "loss",
        "trace",
        "tcp_latency_factor",
        "_endpoints",
        "_links",
        "_disconnected",
        "wire_size",
        "_size_cache",
        "_receivers",
        "_loss_inline",
        "_latency_inline",
    )

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        trace: Optional[MessageTrace] = None,
        tcp_latency_factor: float = 2.0,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency()
        self.loss = loss if loss is not None else NoLoss()
        self.trace = trace if trace is not None else MessageTrace()
        self.tcp_latency_factor = tcp_latency_factor
        # ``send`` runs once per message; for the exact stock model
        # types (not subclasses, whose overrides must keep winning) the
        # per-message model calls are inlined into the send path.  The
        # inlined bodies replicate the models' block-buffered sampling
        # statement for statement, so the RNG draw sequence is
        # bit-identical either way.
        self._loss_inline = type(self.loss) is PerNodeLoss
        self._latency_inline = type(self.latency) is UniformLatency
        self._endpoints: Dict[NodeId, Endpoint] = {}
        self._links: Dict[NodeId, UploadLink] = {}
        self._disconnected: set = set()
        self.wire_size: Callable[[object], int] = default_wire_size
        # type -> int (fixed size) | unbound sizer; only consulted while
        # ``wire_size`` is the default (a custom sizer bypasses it).
        self._size_cache: Dict[type, object] = {}
        # node -> (endpoint, dispatch table or None); delivery jumps
        # straight to the handler when the endpoint publishes a table.
        self._receivers: Dict[NodeId, tuple] = {}

    # ------------------------------------------------------------------
    # membership of the network fabric
    # ------------------------------------------------------------------
    def register(self, endpoint: Endpoint, upload_rate: float = math.inf) -> None:
        """Attach ``endpoint``; duplicate ids are configuration errors."""
        node_id = endpoint.node_id
        require(node_id not in self._endpoints, "node %s already registered", node_id)
        self._endpoints[node_id] = endpoint
        self._links[node_id] = UploadLink(upload_rate)
        # Endpoints that expose their type-keyed dispatch table (see
        # GossipNode.dispatch_table) are delivered to through it without
        # the intermediate ``on_message`` frame.  The table must be
        # fixed after registration.
        self._receivers[node_id] = (endpoint, getattr(endpoint, "dispatch_table", None))

    def set_upload_rate(self, node: NodeId, rate_bytes_per_s: float) -> None:
        """Replace the upload capacity of ``node``."""
        require(node in self._links, "unknown node %s", node)
        self._links[node] = UploadLink(rate_bytes_per_s)

    def link(self, node: NodeId) -> UploadLink:
        """The upload link of ``node``."""
        return self._links[node]

    def disconnect(self, node: NodeId) -> None:
        """Expel ``node`` from the fabric: it can no longer send or receive.

        This is the enforcement end of LiFTinG — managers call it when a
        node's score crosses the expulsion threshold or it fails an
        entropy audit.
        """
        self._disconnected.add(node)

    def reconnect(self, node: NodeId) -> None:
        """Undo :meth:`disconnect` (used by churn experiments)."""
        self._disconnected.discard(node)

    def is_connected(self, node: NodeId) -> bool:
        """True if ``node`` is registered and not expelled."""
        return node in self._endpoints and node not in self._disconnected

    @property
    def node_ids(self):
        """All registered node ids (including disconnected ones)."""
        return list(self._endpoints.keys())

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self,
        src: NodeId,
        dst: NodeId,
        message: object,
        transport: Transport = Transport.UDP,
    ) -> bool:
        """Send ``message`` from ``src`` to ``dst``.

        Returns True if the message was put on the wire (it may still be
        lost in flight on UDP).  Sends from or to expelled nodes, and to
        unregistered destinations, are short-circuited *before* the
        sender's upload link or the byte trace is charged — an expelled
        peer's address is dead, so no bandwidth is spent on it (this
        keeps the Table 5 accounting honest) — and return False so
        callers can observe it.

        A unicast is a one-destination fan-out: the whole send path
        lives in :meth:`send_many` (one copy of the inlined model
        bodies), and a message counts as "put on the wire" even when
        the loss model then drops it, so the count/bool conversion here
        is exact.
        """
        return self.send_many(src, (dst,), message, transport) > 0

    def send_many(self, src: NodeId, dsts, message: object, transport: Transport = Transport.UDP) -> int:
        """Send one ``message`` to several destinations.

        The per-destination loss/latency draw sequence and all
        accounting are exactly those of a per-destination ``send`` loop,
        with the per-message fixed costs (sender guard, wire sizing,
        trace update) hoisted out of the loop.  The gossip fan-outs
        (propose → ``f`` partners, confirm → witnesses, blame → ``M``
        managers) are the bulk of all traffic, which makes this the
        hottest entry point of the simulator — :meth:`send` delegates
        here with a one-element tuple, so this is the *only* copy of
        the send path.

        The ``PerNodeLoss`` / ``UniformLatency`` / ``record_sent``
        bodies are inlined verbatim for the exact stock model types (a
        per-message frame each otherwise); the fallback calls the
        models, and ``tests/sim/test_network.py`` pins the two paths to
        the same RNG draw stream.

        Returns the number of messages put on the wire (lost-in-flight
        datagrams included, as in :meth:`send`).
        """
        endpoints = self._endpoints
        disconnected = self._disconnected
        if disconnected and src in disconnected:
            return 0
        if src not in endpoints:
            require(False, "unknown sender %s", src)

        cls = message.__class__
        ws = self.wire_size
        if ws is default_wire_size:
            cached = self._size_cache.get(cls)
            if cached is None:
                cached = self._size_cache[cls] = _size_strategy(cls, message)
            size = cached if type(cached) is int else int(cached(message))
        else:
            size = ws(message)

        sim = self.sim
        link = self._links[src]
        link_unbounded = link.rate == _INF
        loss = self.loss
        loss_inline = self._loss_inline and transport is _UDP
        latency = self.latency
        latency_inline = self._latency_inline
        udp = transport is _UDP
        tcp_factor = self.tcp_latency_factor
        queue = sim._queue
        deliver = self._deliver
        trace = self.trace
        lost_counts = None

        sent = 0
        for dst in dsts:
            if dst not in endpoints or (disconnected and dst in disconnected):
                continue
            now = sim.now
            if link_unbounded:
                link.bytes_sent += size
                departure = now
            else:
                departure = link.transmit(now, size)
            sent += 1

            if udp:
                if loss_inline:  # PerNodeLoss.is_lost, verbatim
                    node_loss = loss.node_loss
                    if node_loss:
                        p = 1.0 - (
                            (1.0 - loss.base)
                            * (1.0 - node_loss.get(src, 0.0))
                            * (1.0 - node_loss.get(dst, 0.0))
                        )
                    else:
                        p = 1.0 - (1.0 - loss.base)
                    if p <= 0.0:
                        dropped = False
                    else:
                        i = loss._next
                        block = loss._block
                        if i >= len(block):
                            block = loss._block = loss._rng.random(SAMPLE_BLOCK).tolist()
                            i = 0
                        loss._next = i + 1
                        dropped = block[i] < p
                else:
                    dropped = loss.is_lost(src, dst)
                if dropped:
                    if lost_counts is None:
                        lost_counts = trace._lost
                    lost_counts[cls] = lost_counts.get(cls, 0) + 1
                    continue

            if latency_inline:  # UniformLatency.sample, verbatim
                i = latency._next
                block = latency._block
                if i >= len(block):
                    block = latency._block = latency._rng.uniform(
                        latency.low, latency.high, SAMPLE_BLOCK
                    ).tolist()
                    i = 0
                latency._next = i + 1
                delay = block[i]
            else:
                delay = latency.sample(src, dst)
            if not udp:
                delay *= tcp_factor
            arrival = (departure if departure > now else now) + delay
            # Inlined Simulator.schedule (delivery events are the single
            # biggest event source), keeping its time validation as one
            # comparison: a buggy latency model returning a negative or
            # NaN delay must raise here, not silently rewind the clock.
            if not (now <= arrival < _INF):
                raise ValueError(
                    f"latency model produced invalid delivery time {arrival!r} "
                    f"(now={now!r}, delay={delay!r})"
                )
            heappush(queue, [arrival, sim._sequence, deliver, (src, dst, message), _PENDING])
            sim._sequence += 1
            sim._live += 1

        if sent:
            per_src = trace._sent.get(cls)
            if per_src is None:
                per_src = trace._sent[cls] = {}
            entry = per_src.get(src)
            if entry is None:
                entry = per_src[src] = [0, 0]
            entry[0] += sent
            entry[1] += sent * size
        return sent

    def _deliver(self, src: NodeId, dst: NodeId, message: object) -> None:
        disconnected = self._disconnected
        if disconnected and (dst in disconnected or src in disconnected):
            # Expulsion takes effect immediately: in-flight traffic of an
            # expelled node is discarded at delivery time.
            return
        receiver = self._receivers.get(dst)
        if receiver is None:
            return
        cls = message.__class__
        delivered = self.trace._delivered
        delivered[cls] = delivered.get(cls, 0) + 1
        dispatch = receiver[1]
        if dispatch is not None:
            handler = dispatch.get(cls)
            if handler is not None:
                handler(src, message)
            return
        receiver[0].on_message(src, message)
