"""The simulated network: lossy datagrams and reliable streams.

The dissemination and direct-verification path runs over UDP (cheap,
lossy); local-history audits run over TCP (reliable, §5.3).  The network
object models both on top of the same latency models:

* ``Transport.UDP`` — subject to the loss model; one latency sample.
* ``Transport.TCP`` — never lost; pays an extra connection overhead the
  first time and per-message latency inflated by ``tcp_latency_factor``
  (acknowledgement round trips).

Every transmission is serialised through the sender's
:class:`~repro.sim.bandwidth.UploadLink` and accounted in the
:class:`~repro.sim.trace.MessageTrace`.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, Optional, Protocol

from repro.sim.bandwidth import UploadLink
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.loss import LossModel, NoLoss
from repro.sim.trace import MessageTrace
from repro.util.validation import require

NodeId = int


class Transport(enum.Enum):
    """Which channel a message travels on."""

    UDP = "udp"
    TCP = "tcp"


# Module-level aliases: enum member access (`Transport.UDP`) is an
# attribute lookup per use, and `send` runs a hundred thousand times per
# simulated second.
_UDP = Transport.UDP
_TCP = Transport.TCP


class Endpoint(Protocol):
    """Anything that can receive messages from the network."""

    node_id: NodeId

    def on_message(self, src: NodeId, message: object) -> None:
        """Handle a delivered message."""


def default_wire_size(message: object) -> int:
    """Wire size of a message: its ``wire_size()`` if defined, else 64 B."""
    sizer = getattr(message, "wire_size", None)
    if sizer is None:
        return 64
    return int(sizer())


def _size_strategy(cls: type, message: object):
    """Per-class sizing strategy for the default wire-size function.

    Returns an ``int`` for classes whose size is payload-independent
    (they declare ``WIRE_SIZE_FIXED = True``) and for classes without a
    sizer (64-byte default); variable-size classes map to their unbound
    ``wire_size`` function.  Caching this per message *type* turns the
    per-send cost into one dict lookup for the common fixed-size
    verification/reputation messages, and saves the per-instance
    attribute probe for the rest.
    """
    sizer = getattr(cls, "wire_size", None)
    if sizer is None:
        return 64
    if getattr(cls, "WIRE_SIZE_FIXED", False):
        return int(message.wire_size())
    return sizer


class Network:
    """Connects registered endpoints through modelled channels.

    Parameters
    ----------
    sim:
        The discrete-event engine driving delivery times.
    latency:
        One-way delay model (defaults to a 50 ms constant).
    loss:
        Datagram loss model (defaults to no loss).
    trace:
        Byte/message accounting sink (a fresh one is created if omitted).
    tcp_latency_factor:
        Multiplier on the latency sample for TCP messages (handshake +
        acknowledgement round trips).  The paper's audits tolerate this
        because they are sporadic.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        trace: Optional[MessageTrace] = None,
        tcp_latency_factor: float = 2.0,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency()
        self.loss = loss if loss is not None else NoLoss()
        self.trace = trace if trace is not None else MessageTrace()
        self.tcp_latency_factor = tcp_latency_factor
        self._endpoints: Dict[NodeId, Endpoint] = {}
        self._links: Dict[NodeId, UploadLink] = {}
        self._disconnected: set = set()
        self.wire_size: Callable[[object], int] = default_wire_size
        # type -> int (fixed size) | unbound sizer; only consulted while
        # ``wire_size`` is the default (a custom sizer bypasses it).
        self._size_cache: Dict[type, object] = {}

    # ------------------------------------------------------------------
    # membership of the network fabric
    # ------------------------------------------------------------------
    def register(self, endpoint: Endpoint, upload_rate: float = math.inf) -> None:
        """Attach ``endpoint``; duplicate ids are configuration errors."""
        node_id = endpoint.node_id
        require(node_id not in self._endpoints, "node %s already registered", node_id)
        self._endpoints[node_id] = endpoint
        self._links[node_id] = UploadLink(upload_rate)

    def set_upload_rate(self, node: NodeId, rate_bytes_per_s: float) -> None:
        """Replace the upload capacity of ``node``."""
        require(node in self._links, "unknown node %s", node)
        self._links[node] = UploadLink(rate_bytes_per_s)

    def link(self, node: NodeId) -> UploadLink:
        """The upload link of ``node``."""
        return self._links[node]

    def disconnect(self, node: NodeId) -> None:
        """Expel ``node`` from the fabric: it can no longer send or receive.

        This is the enforcement end of LiFTinG — managers call it when a
        node's score crosses the expulsion threshold or it fails an
        entropy audit.
        """
        self._disconnected.add(node)

    def reconnect(self, node: NodeId) -> None:
        """Undo :meth:`disconnect` (used by churn experiments)."""
        self._disconnected.discard(node)

    def is_connected(self, node: NodeId) -> bool:
        """True if ``node`` is registered and not expelled."""
        return node in self._endpoints and node not in self._disconnected

    @property
    def node_ids(self):
        """All registered node ids (including disconnected ones)."""
        return list(self._endpoints.keys())

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self,
        src: NodeId,
        dst: NodeId,
        message: object,
        transport: Transport = Transport.UDP,
    ) -> bool:
        """Send ``message`` from ``src`` to ``dst``.

        Returns True if the message was put on the wire (it may still be
        lost in flight on UDP).  Sends from or to expelled nodes, and to
        unregistered destinations, are short-circuited *before* the
        sender's upload link or the byte trace is charged — an expelled
        peer's address is dead, so no bandwidth is spent on it (this
        keeps the Table 5 accounting honest) — and return False so
        callers can observe it.
        """
        endpoints = self._endpoints
        disconnected = self._disconnected  # usually empty: guard lookups
        if disconnected and src in disconnected:
            return False
        if src not in endpoints:
            require(False, "unknown sender %s", src)
        if dst not in endpoints or (disconnected and dst in disconnected):
            return False

        ws = self.wire_size
        if ws is default_wire_size:
            cls = message.__class__
            cached = self._size_cache.get(cls)
            if cached is None:
                cached = self._size_cache[cls] = _size_strategy(cls, message)
            size = cached if type(cached) is int else int(cached(message))
        else:
            size = ws(message)
        sim = self.sim
        now = sim.now
        departure = self._links[src].transmit(now, size)
        self.trace.record_sent(src, message, size)

        if transport is _UDP and self.loss.is_lost(src, dst):
            self.trace.record_lost(src, dst, message)
            return True

        delay = self.latency.sample(src, dst)
        if transport is _TCP:
            delay *= self.tcp_latency_factor
        arrival = (departure if departure > now else now) + delay
        sim.schedule(arrival, self._deliver, src, dst, message)
        return True

    def _deliver(self, src: NodeId, dst: NodeId, message: object) -> None:
        disconnected = self._disconnected
        if disconnected and (dst in disconnected or src in disconnected):
            # Expulsion takes effect immediately: in-flight traffic of an
            # expelled node is discarded at delivery time.
            return
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            return
        self.trace.record_delivered(dst, message)
        endpoint.on_message(src, message)
