"""The simulated network: lossy datagrams and reliable streams.

The dissemination and direct-verification path runs over UDP (cheap,
lossy); local-history audits run over TCP (reliable, §5.3).  The network
object models both on top of the same latency models:

* ``Transport.UDP`` — subject to the loss model; one latency sample.
* ``Transport.TCP`` — never lost; pays an extra connection overhead the
  first time and per-message latency inflated by ``tcp_latency_factor``
  (acknowledgement round trips).

Every transmission is serialised through the sender's
:class:`~repro.sim.bandwidth.UploadLink` and accounted in the
:class:`~repro.sim.trace.MessageTrace`.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, Optional, Protocol

_INF = math.inf

from bisect import insort
from heapq import heappop, heappush

from repro.sim.bandwidth import UploadLink
from repro.sim.engine import DeliveryTimeline, Simulator
from repro.sim.engine import _PENDING  # heap-entry status word (see below)
from repro.sim.latency import SAMPLE_BLOCK, ConstantLatency, LatencyModel, UniformLatency
from repro.sim.loss import LossModel, NoLoss, PerNodeLoss
from repro.sim.trace import MessageTrace
from repro.util.validation import require

NodeId = int


class Transport(enum.Enum):
    """Which channel a message travels on."""

    UDP = "udp"
    TCP = "tcp"


# Module-level aliases: enum member access (`Transport.UDP`) is an
# attribute lookup per use, and `send` runs a hundred thousand times per
# simulated second.
_UDP = Transport.UDP
_TCP = Transport.TCP


class Endpoint(Protocol):
    """Anything that can receive messages from the network."""

    node_id: NodeId

    def on_message(self, src: NodeId, message: object) -> None:
        """Handle a delivered message."""


def default_wire_size(message: object) -> int:
    """Wire size of a message: its ``wire_size()`` if defined, else 64 B."""
    sizer = getattr(message, "wire_size", None)
    if sizer is None:
        return 64
    return int(sizer())


def _size_strategy(cls: type, message: object):
    """Per-class sizing strategy for the default wire-size function.

    Returns an ``int`` for classes whose size is payload-independent
    (they declare ``WIRE_SIZE_FIXED = True``) and for classes without a
    sizer (64-byte default); variable-size classes map to their unbound
    ``wire_size`` function.  Caching this per message *type* turns the
    per-send cost into one dict lookup for the common fixed-size
    verification/reputation messages, and saves the per-instance
    attribute probe for the rest.
    """
    sizer = getattr(cls, "wire_size", None)
    if sizer is None:
        return 64
    if getattr(cls, "WIRE_SIZE_FIXED", False):
        return int(message.wire_size())
    return sizer


class _ReceiverTable(dict):
    """``node -> (endpoint, dispatch, batch)`` with a dense mirror.

    Writes land both in the dict and in the owning network's ``_rcv``
    list (index == node id; the stream source, id -1, occupies the last
    slot via Python's negative-index rule — the list is kept at max id
    + 2 entries so no registered id can alias it).  Delivery reads the
    dense list when it is live, so *every* entry rebind — registration,
    or a test wrapping a dispatch table in place — must go through
    ``__setitem__``; bulk mutators (``update`` etc.) are not mirrored
    and must not be used.  A non-int or pathological id retires the
    mirror permanently (``_rcv = None``) and the dict serves lookups.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "Network") -> None:
        super().__init__()
        self._owner = owner

    def __setitem__(self, node_id, entry) -> None:
        super().__setitem__(node_id, entry)
        owner = self._owner
        rcv = owner._rcv
        if rcv is None:
            return
        if type(node_id) is int and -1 <= node_id < 1_048_576:
            need = node_id + 2  # own slot plus the source slot at [-1]
            if need > len(rcv):
                # The old last slot held the source entry; it becomes an
                # interior (still unregistered) slot after the growth.
                source_entry = rcv[-1]
                rcv[-1] = None
                rcv.extend([None] * (need - len(rcv)))
                rcv[-1] = source_entry
            rcv[node_id] = entry
        else:
            owner._rcv = None

    def __delitem__(self, node_id) -> None:
        super().__delitem__(node_id)
        rcv = self._owner._rcv
        if rcv is not None and type(node_id) is int and -1 <= node_id < len(rcv) - 1:
            rcv[node_id] = None


class Network:
    """Connects registered endpoints through modelled channels.

    Parameters
    ----------
    sim:
        The discrete-event engine driving delivery times.
    latency:
        One-way delay model (defaults to a 50 ms constant).
    loss:
        Datagram loss model (defaults to no loss).
    trace:
        Byte/message accounting sink (a fresh one is created if omitted).
    tcp_latency_factor:
        Multiplier on the latency sample for TCP messages (handshake +
        acknowledgement round trips).  The paper's audits tolerate this
        because they are sporadic.
    use_timeline:
        Schedule deliveries on a calendar-queue
        :class:`~repro.sim.engine.DeliveryTimeline` attached to the
        engine (O(1) amortized per message) instead of the binary heap.
        Firing order is identical either way (pinned by the
        heap-vs-calendar equivalence tests); disable to run the heap
        scheduler, e.g. for A/B testing.  A simulator holds at most one
        timeline: a second network on the same engine silently keeps
        the heap path.

    The ``latency`` and ``loss`` models are fixed at construction (their
    *state* may be mutated — ``set_node_loss`` etc. — but the attributes
    must not be rebound afterwards: the send fast path specialises on
    their concrete types once, here in ``__init__``, and the timeline
    bucket width is sized from the latency model's
    ``delivery_window()`` hint).
    """

    __slots__ = (
        "sim",
        "latency",
        "loss",
        "trace",
        "tcp_latency_factor",
        "_endpoints",
        "_links",
        "_disconnected",
        "wire_size",
        "_size_cache",
        "_receivers",
        "_rcv",
        "_loss_inline",
        "_latency_inline",
        "_deliver_cb",
        "_timeline",
        "_batch_runs",
        "fault_plane",
    )

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        trace: Optional[MessageTrace] = None,
        tcp_latency_factor: float = 2.0,
        use_timeline: bool = True,
    ) -> None:
        self.sim = sim
        self.latency = latency if latency is not None else ConstantLatency()
        self.loss = loss if loss is not None else NoLoss()
        self.trace = trace if trace is not None else MessageTrace()
        self.tcp_latency_factor = tcp_latency_factor
        # ``send`` runs once per message; for the exact stock model
        # types (not subclasses, whose overrides must keep winning) the
        # per-message model calls are inlined into the send path.  The
        # inlined bodies replicate the models' block-buffered sampling
        # statement for statement, so the RNG draw sequence is
        # bit-identical either way.
        self._loss_inline = type(self.loss) is PerNodeLoss
        self._latency_inline = type(self.latency) is UniformLatency
        # The one bound delivery callback every heap entry carries —
        # a stable identity lets :meth:`_purge_in_flight` recognise
        # this network's deliveries in the simulator queue.
        self._deliver_cb = self._deliver
        self._endpoints: Dict[NodeId, Endpoint] = {}
        self._links: Dict[NodeId, UploadLink] = {}
        self._disconnected: set = set()
        self.wire_size: Callable[[object], int] = default_wire_size
        # type -> int (fixed size) | unbound sizer; only consulted while
        # ``wire_size`` is the default (a custom sizer bypasses it).
        self._size_cache: Dict[type, object] = {}
        # node -> (endpoint, dispatch table or None, batch table or
        # None); delivery jumps straight to the handler when the
        # endpoint publishes a table.
        # Dense receiver mirror first (``_ReceiverTable.__setitem__``
        # writes through to it): simulation ids are small contiguous
        # ints, which makes the send fan-out's membership probe and the
        # drain's receiver lookup a list index instead of a dict hash.
        self._rcv: Optional[list] = [None, None]
        self._receivers: Dict[NodeId, tuple] = _ReceiverTable(self)
        # --- the calendar-queue delivery tier --------------------------
        # Bucket width heuristic: an eighth of the latency spread, at
        # least half the minimum delay (so constant-latency models get
        # sensibly coarse buckets), floored at 1 ms.  Same-destination
        # batch dispatch additionally requires width <= the minimum
        # possible arrival delay: then nothing can land *between* the
        # entries of an already-committed same-bucket run.
        self._timeline: Optional[DeliveryTimeline] = None
        self._batch_runs = False
        #: optional scripted-fault hook (see ``attach_faults``); the send
        #: loop pays one hoisted ``is not None`` check when absent.
        self.fault_plane = None
        if use_timeline and sim._timeline is None and sim.now >= 0.0:
            window = getattr(self.latency, "delivery_window", None)
            min_delay, span = window() if window is not None else (0.0, 0.0)
            width = max(span / 8.0, min_delay / 2.0, 0.001)
            timeline = DeliveryTimeline(width)
            sim.attach_timeline(timeline, self._drain)
            self._timeline = timeline
            min_arrival = min_delay * min(1.0, tcp_latency_factor)
            self._batch_runs = min_arrival > 0.0 and width <= min_arrival

    # ------------------------------------------------------------------
    # membership of the network fabric
    # ------------------------------------------------------------------
    def register(self, endpoint: Endpoint, upload_rate: float = math.inf) -> None:
        """Attach ``endpoint``; duplicate ids are configuration errors."""
        node_id = endpoint.node_id
        require(node_id not in self._endpoints, "node %s already registered", node_id)
        self._endpoints[node_id] = endpoint
        self._links[node_id] = UploadLink(upload_rate)
        # Endpoints that expose their type-keyed dispatch table (see
        # GossipNode.dispatch_table) are delivered to through it without
        # the intermediate ``on_message`` frame; a batch table (see
        # GossipNode.batch_dispatch_table) additionally lets the drain
        # hand over whole same-type delivery runs.  Both tables must be
        # fixed after registration.
        self._receivers[node_id] = (
            endpoint,
            getattr(endpoint, "dispatch_table", None),
            getattr(endpoint, "batch_dispatch_table", None),
        )

    def set_upload_rate(self, node: NodeId, rate_bytes_per_s: float) -> None:
        """Replace the upload capacity of ``node``."""
        require(node in self._links, "unknown node %s", node)
        self._links[node] = UploadLink(rate_bytes_per_s)

    def link(self, node: NodeId) -> UploadLink:
        """The upload link of ``node``."""
        return self._links[node]

    def disconnect(self, node: NodeId) -> None:
        """Expel ``node`` from the fabric: it can no longer send or receive.

        This is the enforcement end of LiFTinG — managers call it when a
        node's score crosses the expulsion threshold or it fails an
        entropy audit.
        """
        self._disconnected.add(node)

    def reconnect(self, node: NodeId) -> None:
        """Undo :meth:`disconnect` (used by churn experiments).

        In-flight messages addressed to the node are purged first: they
        were sent to the *previous* process and sat in buffers the crash
        destroyed.  Without the purge, a delivery delayed past the whole
        outage (e.g. by a scripted slow-link fault) would be handed to
        the restarted process as if nothing had happened.
        """
        if node in self._disconnected:
            self._purge_in_flight(node)
        self._disconnected.discard(node)

    def _purge_in_flight(self, node: NodeId) -> int:
        """Drop queued deliveries addressed to ``node``; returns count.

        Sends *to* a disconnected node are refused at the source, so
        everything found here was already in flight when the node went
        down.  Purged messages are accounted as lost in the trace, same
        as a datagram dropped on the wire.
        """
        lost = self.trace._lost
        dropped = 0
        tl = self._timeline
        if tl is not None:
            cur, pos = tl.cur, tl.cur_pos
            if pos < len(cur):
                kept = [e for e in cur[pos:] if e[3] != node]
                removed = (len(cur) - pos) - len(kept)
                if removed:
                    for e in cur[pos:]:
                        if e[3] == node:
                            lost[e[4].__class__] += 1
                    cur[pos:] = kept
                    dropped += removed
            for bucket in tl._ring:
                if not bucket:
                    continue
                kept = [e for e in bucket if e[3] != node]
                removed = len(bucket) - len(kept)
                if removed:
                    for e in bucket:
                        if e[3] == node:
                            lost[e[4].__class__] += 1
                    # In place: bucket identity is aliased by the
                    # timeline's occupied-index heap bookkeeping.
                    bucket[:] = kept
                    dropped += removed
            tl.count -= dropped
            self.sim._live -= dropped
        deliver = self._deliver_cb
        for entry in self.sim._queue:
            # [time, seq, callback, args, status]; 0 == pending.
            if entry[4] == 0 and entry[2] is deliver and entry[3][1] == node:
                lost[entry[3][2].__class__] += 1
                self.sim.cancel_entry(entry)
                dropped += 1
        return dropped

    def attach_faults(self, plane) -> None:
        """Install a :class:`~repro.runtime.faults.FaultPlane`.

        Every subsequent send consults ``plane.on_send`` — injected
        drops are accounted as lost in the trace, slow-link extra delay
        is added on top of the latency sample.  Pass ``None`` to detach.
        """
        self.fault_plane = plane

    def is_connected(self, node: NodeId) -> bool:
        """True if ``node`` is registered and not expelled."""
        return node in self._endpoints and node not in self._disconnected

    @property
    def node_ids(self):
        """All registered node ids (including disconnected ones)."""
        return list(self._endpoints.keys())

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(
        self,
        src: NodeId,
        dst: NodeId,
        message: object,
        transport: Transport = Transport.UDP,
    ) -> bool:
        """Send ``message`` from ``src`` to ``dst``.

        Returns True if the message was put on the wire (it may still be
        lost in flight on UDP).  Sends from or to expelled nodes, and to
        unregistered destinations, are short-circuited *before* the
        sender's upload link or the byte trace is charged — an expelled
        peer's address is dead, so no bandwidth is spent on it (this
        keeps the Table 5 accounting honest) — and return False so
        callers can observe it.

        A unicast is a one-destination fan-out: the whole send path
        lives in :meth:`send_many` (one copy of the inlined model
        bodies), and a message counts as "put on the wire" even when
        the loss model then drops it, so the count/bool conversion here
        is exact.
        """
        return self.send_many(src, (dst,), message, transport) > 0

    def send_many(self, src: NodeId, dsts, message: object, transport: Transport = Transport.UDP) -> int:
        """Send one ``message`` to several destinations.

        The per-destination loss/latency draw sequence and all
        accounting are exactly those of a per-destination ``send`` loop,
        with the per-message fixed costs (sender guard, wire sizing,
        trace update) hoisted out of the loop.  The gossip fan-outs
        (propose → ``f`` partners, confirm → witnesses, blame → ``M``
        managers) are the bulk of all traffic, which makes this the
        hottest entry point of the simulator — :meth:`send` delegates
        here with a one-element tuple, so this is the *only* copy of
        the send path.

        The ``PerNodeLoss`` / ``UniformLatency`` / ``record_sent``
        bodies are inlined verbatim for the exact stock model types (a
        per-message frame each otherwise); the fallback calls the
        models, and ``tests/sim/test_network.py`` pins the two paths to
        the same RNG draw stream.

        Returns the number of messages put on the wire (lost-in-flight
        datagrams included, as in :meth:`send`).
        """
        endpoints = self._endpoints
        disconnected = self._disconnected
        if disconnected and src in disconnected:
            return 0
        if src not in endpoints:
            require(False, "unknown sender %s", src)

        cls = message.__class__
        ws = self.wire_size
        if ws is default_wire_size:
            cached = self._size_cache.get(cls)
            if cached is None:
                cached = self._size_cache[cls] = _size_strategy(cls, message)
            size = cached if type(cached) is int else int(cached(message))
        else:
            size = ws(message)

        sim = self.sim
        now = sim.now  # constant for the whole fan-out: no event fires here
        link = self._links[src]
        link_unbounded = link.rate == _INF
        loss = self.loss
        loss_inline = self._loss_inline and transport is _UDP
        latency = self.latency
        latency_inline = self._latency_inline
        udp = transport is _UDP
        tcp_factor = self.tcp_latency_factor
        queue = sim._queue
        deliver = self._deliver_cb
        trace = self.trace
        lost_counts = None
        fault = self.fault_plane
        # Per-fan-out hoists of the inlined model state: the source
        # loss factor is destination-independent, and the block lengths
        # only change on refill (always to SAMPLE_BLOCK) — this keeps
        # the loop free of len() and repeated dict lookups while the
        # float expressions stay associatively identical to the models'.
        if loss_inline:
            node_loss = loss.node_loss
            if node_loss:
                p_fixed = None
                keep = (1.0 - loss.base) * (1.0 - node_loss.get(src, 0.0))
            else:
                p_fixed = 1.0 - (1.0 - loss.base)
            loss_block = loss._block
            loss_len = len(loss_block)
        if latency_inline:
            lat_block = latency._block
            lat_len = len(lat_block)
        # Calendar-queue tier state (see DeliveryTimeline.add, whose
        # common branch is inlined below: one list append per message).
        tl = self._timeline
        if tl is not None:
            tl_ring = tl._ring
            tl_mask = tl._mask
            tl_order = tl._order
            tl_inv_width = tl.inv_width
            tl_horizon = tl.horizon
            base_idx = int(now * tl_inv_width)
        tl_added = 0

        rcv = self._rcv
        sent = 0
        for dst in dsts:
            # Membership probe: one list index in dense mode (`rcv[dst]
            # is None` == "unregistered"), dict hash in fallback mode.
            # ids below -1 would wrap into the table, hence the guard;
            # non-int ids raise TypeError out of the comparison and are
            # skipped exactly like the dict miss they used to be.
            if rcv is not None:
                try:
                    if dst < -1 or rcv[dst] is None:
                        continue
                except (IndexError, TypeError):
                    continue
                if disconnected and dst in disconnected:
                    continue
            elif dst not in endpoints or (disconnected and dst in disconnected):
                continue
            if link_unbounded:
                link.bytes_sent += size
                departure = now
            else:
                departure = link.transmit(now, size)
            sent += 1

            if udp:
                if loss_inline:  # PerNodeLoss.is_lost, verbatim
                    if p_fixed is not None:
                        p = p_fixed
                    else:
                        p = 1.0 - keep * (1.0 - node_loss.get(dst, 0.0))
                    if p <= 0.0:
                        dropped = False
                    else:
                        i = loss._next
                        if i >= loss_len:
                            loss_block = loss._block = loss._rng.random(SAMPLE_BLOCK).tolist()
                            loss_len = SAMPLE_BLOCK
                            i = 0
                        loss._next = i + 1
                        dropped = loss_block[i] < p
                else:
                    dropped = loss.is_lost(src, dst)
                if dropped:
                    if lost_counts is None:
                        lost_counts = trace._lost
                    lost_counts[cls] += 1
                    continue

            if fault is not None:
                # Scripted faults: a partition/targeted drop eats the
                # message after the link was charged (it *was* sent);
                # slow links add ``fate`` seconds to the arrival below.
                fate = fault.on_send(now, src, dst, message)
                if fate < 0.0:
                    if lost_counts is None:
                        lost_counts = trace._lost
                    lost_counts[cls] += 1
                    continue

            if latency_inline:  # UniformLatency.sample, verbatim
                i = latency._next
                if i >= lat_len:
                    lat_block = latency._block = latency._rng.uniform(
                        latency.low, latency.high, SAMPLE_BLOCK
                    ).tolist()
                    lat_len = SAMPLE_BLOCK
                    i = 0
                latency._next = i + 1
                delay = lat_block[i]
            else:
                delay = latency.sample(src, dst)
            if not udp:
                delay *= tcp_factor
            if fault is not None and fate > 0.0:
                delay += fate
            arrival = (departure if departure > now else now) + delay
            # Keeping Simulator.schedule's time validation as one
            # comparison: a buggy latency model returning a negative or
            # NaN delay must raise here, not silently rewind the clock.
            if not (now <= arrival < _INF):
                raise ValueError(
                    f"latency model produced invalid delivery time {arrival!r} "
                    f"(now={now!r}, delay={delay!r})"
                )
            if tl is not None:
                # Inlined DeliveryTimeline.add common branch: a future
                # in-horizon bucket costs one append.  Rare branches
                # (current bucket, cursor rewind) take the method; the
                # past-horizon outlier rides the heap tier — the run
                # loop merges the tiers by (time, seq) either way.
                idx = int(arrival * tl_inv_width)
                if idx > tl.cur_idx and idx - base_idx < tl_horizon:
                    slot = tl_ring[idx & tl_mask]
                    if not slot:
                        heappush(tl_order, idx)
                    slot.append([arrival, sim._sequence, src, dst, message])
                    tl_added += 1
                elif not tl.add([arrival, sim._sequence, src, dst, message], base_idx):
                    heappush(
                        queue,
                        [arrival, sim._sequence, deliver, (src, dst, message), _PENDING],
                    )
            else:
                heappush(queue, [arrival, sim._sequence, deliver, (src, dst, message), _PENDING])
            sim._sequence += 1
            sim._live += 1

        if sent:
            entry = trace._sent[cls][src]
            entry[0] += sent
            entry[1] += sent * size
        if tl_added:
            tl.count += tl_added
        return sent

    def _deliver(self, src: NodeId, dst: NodeId, message: object) -> None:
        """Heap-tier delivery (past-horizon outliers, ``use_timeline=False``)."""
        disconnected = self._disconnected
        if disconnected and (dst in disconnected or src in disconnected):
            # Expulsion takes effect immediately: in-flight traffic of an
            # expelled node is discarded at delivery time.
            return
        receiver = self._receivers.get(dst)
        if receiver is None:
            return
        cls = message.__class__
        self.trace._delivered[cls] += 1
        dispatch = receiver[1]
        if dispatch is not None:
            handler = dispatch.get(cls)
            if handler is not None:
                handler(src, message)
            return
        receiver[0].on_message(src, message)

    def _drain(self, until: float, budget) -> int:
        """Fire pending timeline deliveries in global ``(time, seq)`` order.

        The engine's run loop calls this whenever the timeline head is
        due before the next live heap event; it returns the number of
        entries fired, yielding back when a heap event preempts (checked
        against the *live* heap head per entry, so timers scheduled by
        delivery handlers interleave exactly as they would under the
        heap scheduler), an entry is due past ``until``, ``budget``
        entries have fired, or the timeline is exhausted.

        Consecutive entries for the same destination and message class
        are handed to the endpoint's batch table in one call when the
        network certified batch dispatch (bucket width <= minimum
        arrival delay, so nothing can land inside a committed run; see
        ``__init__``).  Batching is suspended while any node is
        disconnected — the per-entry path re-checks expulsion per
        message, exactly like :meth:`_deliver`.
        """
        sim = self.sim
        tl = self._timeline
        queue = sim._queue
        # Timeline entries only exist for destinations that passed the
        # send-side membership probe, so the dense table (when live)
        # serves the lookup by plain index — id -1 (the source) lands on
        # the last slot by Python's negative-index rule.
        rcv = self._rcv
        receivers = rcv if rcv is not None else self._receivers
        delivered = self.trace._delivered
        disconnected = self._disconnected
        batch_runs = self._batch_runs
        advance = tl.advance
        fired = 0
        while tl.cur_pos < len(tl.cur) or advance():
            cur = tl.cur
            i = tl.cur_pos
            while True:
                try:
                    e = cur[i]
                except IndexError:
                    tl.cur_pos = i
                    break  # bucket drained; advance to the next one
                t = e[0]
                if t > until:
                    tl.cur_pos = i
                    return fired
                # A live heap event due first preempts the drain.
                preempt = False
                while queue:
                    h = queue[0]
                    if h[4] == 0:  # _PENDING
                        if h[0] < t or (h[0] == t and h[1] < e[1]):
                            preempt = True
                        break
                    heappop(queue)
                    sim._cancelled_in_heap -= 1
                if preempt or fired >= budget:
                    tl.cur_pos = i
                    return fired
                dst = e[3]
                message = e[4]
                cls = message.__class__
                receiver = receivers[dst]
                if batch_runs and not disconnected:
                    batch_table = receiver[2]
                    if batch_table is not None:
                        # Cheap gate first: only probe the batch table
                        # when the next entry already matches.
                        j = i + 1
                        run = False
                        try:
                            e2 = cur[j]
                            run = e2[3] == dst and e2[4].__class__ is cls
                        except IndexError:
                            pass
                        if run:
                            handler = batch_table.get(cls)
                            if handler is not None:
                                if queue:
                                    h = queue[0]
                                    ht = h[0]
                                    hs = h[1]
                                else:
                                    ht = _INF
                                    hs = 0
                                limit = i + (budget - fired)
                                j = i + 1
                                while j < limit:
                                    try:
                                        e2 = cur[j]
                                    except IndexError:
                                        break
                                    if e2[3] != dst or e2[4].__class__ is not cls:
                                        break
                                    t2 = e2[0]
                                    if t2 > until or t2 > ht or (t2 == ht and e2[1] > hs):
                                        break
                                    j += 1
                                if j > i + 1:
                                    tl.cur_pos = j
                                    fired += j - i
                                    delivered[cls] += j - i
                                    # The run's end time becomes ``now``;
                                    # handlers needing per-entry times
                                    # (clock reads, sends) advance it
                                    # entry by entry themselves.
                                    sim.now = cur[j - 1][0]
                                    handler(cur, i, j)
                                    i = j
                                    continue
                tl.cur_pos = i + 1
                sim.now = t
                fired += 1
                if disconnected and (dst in disconnected or e[2] in disconnected):
                    i += 1
                    continue
                delivered[cls] += 1
                dispatch = receiver[1]
                if dispatch is not None:
                    # Subscript, not .get: GossipNode pre-seeds every
                    # wire class (missing handlers as None), so this
                    # only raises for non-protocol message types.
                    try:
                        handler = dispatch[cls]
                    except KeyError:
                        handler = None
                    if handler is not None:
                        handler(e[2], message)
                else:
                    receiver[0].on_message(e[2], message)
                # Handlers never move the cursor (re-entrant adds insort
                # at or after it), so the next index is simply i + 1.
                i += 1
        return fired
