"""Byte- and message-level accounting.

Table 5 of the paper reports the *bandwidth overhead* of LiFTinG: bytes
spent on verification traffic (acks, confirms, confirm responses,
blames, score reads) relative to bytes spent on the data path (propose /
request / serve).  Table 3 reports per-role *message counts*.  The
:class:`MessageTrace` records both, keyed by message kind and by the
category the message class declares (``data``, ``verification``,
``reputation`` or ``control``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Optional

NodeId = int

CATEGORY_DATA = "data"
CATEGORY_VERIFICATION = "verification"
CATEGORY_REPUTATION = "reputation"
CATEGORY_CONTROL = "control"

ALL_CATEGORIES = (
    CATEGORY_DATA,
    CATEGORY_VERIFICATION,
    CATEGORY_REPUTATION,
    CATEGORY_CONTROL,
)


def message_kind(message: object) -> str:
    """The trace key of a message: its class name."""
    return type(message).__name__


def message_category(message: object) -> str:
    """The trace category of a message (class attribute ``CATEGORY``)."""
    return getattr(message, "CATEGORY", CATEGORY_CONTROL)


# class -> (kind, category); recording runs per send, and the name /
# CATEGORY attribute probes are pure per-type functions.
_CLASS_META: Dict[type, tuple] = {}


def _class_meta(cls: type) -> tuple:
    meta = _CLASS_META.get(cls)
    if meta is None:
        meta = _CLASS_META[cls] = (
            cls.__name__,
            getattr(cls, "CATEGORY", CATEGORY_CONTROL),
        )
    return meta


class MessageTrace:
    """Accumulates message counts and byte volumes.

    All counters are ``(kind | category, node) -> value`` maps; the
    aggregate queries below are what the metrics layer consumes.
    """

    def __init__(self) -> None:
        self._sent_count: Dict[str, int] = defaultdict(int)
        self._sent_bytes: Dict[str, int] = defaultdict(int)
        self._lost_count: Dict[str, int] = defaultdict(int)
        self._delivered_count: Dict[str, int] = defaultdict(int)
        self._node_sent_bytes: Dict[NodeId, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._node_sent_count: Dict[NodeId, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        self._category_bytes: Dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # recording (called by the network)
    # ------------------------------------------------------------------
    def record_sent(self, src: NodeId, message: object, size: int) -> None:
        """Account an outgoing message (before any loss decision)."""
        kind, category = _class_meta(message.__class__)
        self._sent_count[kind] += 1
        self._sent_bytes[kind] += size
        self._category_bytes[category] += size
        self._node_sent_bytes[src][category] += size
        self._node_sent_count[src][kind] += 1

    def record_lost(self, src: NodeId, dst: NodeId, message: object) -> None:
        """Account a datagram dropped by the loss model."""
        self._lost_count[message.__class__.__name__] += 1

    def record_delivered(self, dst: NodeId, message: object) -> None:
        """Account a delivered message."""
        self._delivered_count[message.__class__.__name__] += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def sent_count(self, kind: Optional[str] = None) -> int:
        """Messages sent, for one ``kind`` or in total."""
        if kind is None:
            return sum(self._sent_count.values())
        return self._sent_count.get(kind, 0)

    def sent_bytes(self, kind: Optional[str] = None) -> int:
        """Bytes sent, for one ``kind`` or in total."""
        if kind is None:
            return sum(self._sent_bytes.values())
        return self._sent_bytes.get(kind, 0)

    def lost_count(self, kind: Optional[str] = None) -> int:
        """Datagrams lost, for one ``kind`` or in total."""
        if kind is None:
            return sum(self._lost_count.values())
        return self._lost_count.get(kind, 0)

    def delivered_count(self, kind: Optional[str] = None) -> int:
        """Messages delivered, for one ``kind`` or in total."""
        if kind is None:
            return sum(self._delivered_count.values())
        return self._delivered_count.get(kind, 0)

    def category_bytes(self, category: str) -> int:
        """Total bytes sent in ``category`` across all nodes."""
        return self._category_bytes.get(category, 0)

    def node_category_bytes(self, node: NodeId, category: str) -> int:
        """Bytes ``node`` sent in ``category``."""
        return self._node_sent_bytes.get(node, {}).get(category, 0)

    def node_sent_count(self, node: NodeId, kind: str) -> int:
        """Messages of ``kind`` sent by ``node``."""
        return self._node_sent_count.get(node, {}).get(kind, 0)

    def kinds(self) -> Iterable[str]:
        """All message kinds observed so far."""
        return sorted(self._sent_count.keys())

    def overhead_ratio(
        self,
        overhead_categories: Iterable[str] = (CATEGORY_VERIFICATION, CATEGORY_REPUTATION),
        data_category: str = CATEGORY_DATA,
    ) -> float:
        """Verification bytes divided by data bytes (Table 5's metric).

        Returns 0.0 when no data bytes were sent (e.g. before the stream
        starts) rather than dividing by zero.
        """
        data = self.category_bytes(data_category)
        if data == 0:
            return 0.0
        overhead = sum(self.category_bytes(c) for c in overhead_categories)
        return overhead / data

    def loss_rate(self, kind: Optional[str] = None) -> float:
        """Observed datagram loss rate (lost / sent)."""
        sent = self.sent_count(kind)
        if sent == 0:
            return 0.0
        return self.lost_count(kind) / sent

    def reset(self) -> None:
        """Drop all counters (e.g. to exclude a warm-up phase)."""
        self.__init__()
