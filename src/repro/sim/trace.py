"""Byte- and message-level accounting.

Table 5 of the paper reports the *bandwidth overhead* of LiFTinG: bytes
spent on verification traffic (acks, confirms, confirm responses,
blames, score reads) relative to bytes spent on the data path (propose /
request / serve).  Table 3 reports per-role *message counts*.  The
:class:`MessageTrace` records both, keyed by message kind and by the
category the message class declares (``data``, ``verification``,
``reputation`` or ``control``).

Performance note
----------------
Recording runs once per transmission — it is on the hottest path of the
simulator — so the write side is a single ``(sender, message class)``
keyed counter pair per send and one class-keyed counter per loss /
delivery.  The kind/category/per-node views the metrics layer consumes
are *aggregated on demand* from those flat counters: experiments read a
trace a handful of times per run, so moving the fan-out from the
per-send path (five dict updates in the old layout) to the query side
is a net win of several dict operations per message.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional

NodeId = int


def _new_sent_entry() -> list:
    """``[count, bytes]`` accumulator (module-level: traces pickle)."""
    return [0, 0]


def _new_per_src() -> "defaultdict":
    return defaultdict(_new_sent_entry)

CATEGORY_DATA = "data"
CATEGORY_VERIFICATION = "verification"
CATEGORY_REPUTATION = "reputation"
CATEGORY_CONTROL = "control"

ALL_CATEGORIES = (
    CATEGORY_DATA,
    CATEGORY_VERIFICATION,
    CATEGORY_REPUTATION,
    CATEGORY_CONTROL,
)


def message_kind(message: object) -> str:
    """The trace key of a message: its class name."""
    return type(message).__name__


def message_category(message: object) -> str:
    """The trace category of a message (class attribute ``CATEGORY``)."""
    return getattr(message, "CATEGORY", CATEGORY_CONTROL)


# class -> (kind, category); the name / CATEGORY attribute probes are
# pure per-type functions, cached for the aggregation passes.
_CLASS_META: Dict[type, tuple] = {}


def _class_meta(cls: type) -> tuple:
    meta = _CLASS_META.get(cls)
    if meta is None:
        meta = _CLASS_META[cls] = (
            cls.__name__,
            getattr(cls, "CATEGORY", CATEGORY_CONTROL),
        )
    return meta


class MessageTrace:
    """Accumulates message counts and byte volumes.

    The write-side state is flat: ``message class -> {src -> [count,
    bytes]}`` for sends and ``class -> count`` for losses / deliveries.
    All public queries aggregate those counters on demand and preserve
    the original ``(kind | category, node)`` views.

    :class:`~repro.sim.network.Network` updates the underlying mappings
    *inline* on its send/deliver path (the structures, not the
    ``record_*`` methods, are the recording interface there); the
    methods remain for non-hot-path recording and tests.
    """

    def __init__(self) -> None:
        #: cls -> {src -> [sent_count, sent_bytes]}; defaultdicts so the
        #: network's inline accounting is one auto-vivifying subscript
        #: per send instead of a get-miss-insert dance per message.
        self._sent: Dict[type, Dict[NodeId, List[int]]] = defaultdict(_new_per_src)
        self._lost: Dict[type, int] = defaultdict(int)
        self._delivered: Dict[type, int] = defaultdict(int)

    # ------------------------------------------------------------------
    # recording (called by the network)
    # ------------------------------------------------------------------
    def record_sent(self, src: NodeId, message: object, size: int) -> None:
        """Account an outgoing message (before any loss decision)."""
        entry = self._sent[message.__class__][src]
        entry[0] += 1
        entry[1] += size

    def record_lost(self, src: NodeId, dst: NodeId, message: object) -> None:
        """Account a datagram dropped by the loss model."""
        self._lost[message.__class__] += 1

    def record_delivered(self, dst: NodeId, message: object) -> None:
        """Account a delivered message."""
        self._delivered[message.__class__] += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def sent_count(self, kind: Optional[str] = None) -> int:
        """Messages sent, for one ``kind`` or in total."""
        return sum(
            entry[0]
            for cls, per_src in self._sent.items()
            if kind is None or cls.__name__ == kind
            for entry in per_src.values()
        )

    def sent_bytes(self, kind: Optional[str] = None) -> int:
        """Bytes sent, for one ``kind`` or in total."""
        return sum(
            entry[1]
            for cls, per_src in self._sent.items()
            if kind is None or cls.__name__ == kind
            for entry in per_src.values()
        )

    def lost_count(self, kind: Optional[str] = None) -> int:
        """Datagrams lost, for one ``kind`` or in total."""
        if kind is None:
            return sum(self._lost.values())
        return sum(count for cls, count in self._lost.items() if cls.__name__ == kind)

    def delivered_count(self, kind: Optional[str] = None) -> int:
        """Messages delivered, for one ``kind`` or in total."""
        if kind is None:
            return sum(self._delivered.values())
        return sum(
            count for cls, count in self._delivered.items() if cls.__name__ == kind
        )

    def category_bytes(self, category: str) -> int:
        """Total bytes sent in ``category`` across all nodes."""
        return sum(
            entry[1]
            for cls, per_src in self._sent.items()
            if _class_meta(cls)[1] == category
            for entry in per_src.values()
        )

    def node_category_bytes(self, node: NodeId, category: str) -> int:
        """Bytes ``node`` sent in ``category``."""
        total = 0
        for cls, per_src in self._sent.items():
            if _class_meta(cls)[1] == category:
                entry = per_src.get(node)
                if entry is not None:
                    total += entry[1]
        return total

    def node_sent_count(self, node: NodeId, kind: str) -> int:
        """Messages of ``kind`` sent by ``node``."""
        total = 0
        for cls, per_src in self._sent.items():
            if cls.__name__ == kind:
                entry = per_src.get(node)
                if entry is not None:
                    total += entry[0]
        return total

    def kinds(self) -> Iterable[str]:
        """All message kinds observed so far."""
        return sorted({cls.__name__ for cls in self._sent})

    def sent_counts_by_kind(self) -> Dict[str, int]:
        """``kind -> messages sent`` in one pass over the counters.

        Equivalent to ``{k: sent_count(k) for k in kinds()}`` without
        the per-kind rescan (the metrics layer reads all kinds at once).
        """
        totals: Dict[str, int] = {}
        for cls, per_src in self._sent.items():
            kind = cls.__name__
            totals[kind] = totals.get(kind, 0) + sum(
                entry[0] for entry in per_src.values()
            )
        return totals

    def category_bytes_all(self) -> Dict[str, int]:
        """``category -> bytes sent`` for every category in one pass."""
        totals: Dict[str, int] = {category: 0 for category in ALL_CATEGORIES}
        for cls, per_src in self._sent.items():
            category = _class_meta(cls)[1]
            totals[category] = totals.get(category, 0) + sum(
                entry[1] for entry in per_src.values()
            )
        return totals

    def overhead_ratio(
        self,
        overhead_categories: Iterable[str] = (CATEGORY_VERIFICATION, CATEGORY_REPUTATION),
        data_category: str = CATEGORY_DATA,
    ) -> float:
        """Verification bytes divided by data bytes (Table 5's metric).

        Returns 0.0 when no data bytes were sent (e.g. before the stream
        starts) rather than dividing by zero.
        """
        data = self.category_bytes(data_category)
        if data == 0:
            return 0.0
        overhead = sum(self.category_bytes(c) for c in overhead_categories)
        return overhead / data

    def loss_rate(self, kind: Optional[str] = None) -> float:
        """Observed datagram loss rate (lost / sent)."""
        sent = self.sent_count(kind)
        if sent == 0:
            return 0.0
        return self.lost_count(kind) / sent

    def reset(self) -> None:
        """Drop all counters (e.g. to exclude a warm-up phase)."""
        self.__init__()
