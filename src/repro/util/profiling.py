"""Profiling hooks for the CLI runners and cluster drivers.

Every perf-focused change to this repo starts from evidence; the
``--profile`` flag on the CLI runners (and ``SimCluster.run``'s
``profile_to``) funnels that evidence into a file so the next
optimisation PR does not have to rediscover the hot paths.  See the
"Profiling recipe" section of ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

#: how many entries each stats table keeps in the dump.
_STATS_LINES = 60


@contextlib.contextmanager
def maybe_profile(path: Optional[str]) -> Iterator[None]:
    """Profile the wrapped block into ``path`` (no-op when falsy).

    The dump contains two sorted tables — cumulative and internal time —
    produced by ``cProfile``/``pstats``.
    """
    if not path:
        yield
        return
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        with open(path, "w") as fh:
            stats = pstats.Stats(profiler, stream=fh)
            stats.sort_stats("cumulative").print_stats(_STATS_LINES)
            stats.sort_stats("tottime").print_stats(_STATS_LINES)
        print(f"profile written to {path}")
