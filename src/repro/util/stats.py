"""Streaming and empirical statistics.

The experiments report score distributions (Figures 10, 11, 14), entropy
distributions (Figure 13) and detection rates (Figure 12).  This module
provides the common statistical plumbing: numerically stable running
moments (Welford), empirical CDFs, and normalised histograms matching the
"fraction of nodes" y-axes used throughout the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.util.validation import require


class RunningStats:
    """Numerically stable running mean/variance (Welford's algorithm).

    >>> s = RunningStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     s.add(x)
    >>> s.mean, round(s.variance, 6)
    (2.0, 1.0)
    """

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Fold ``value`` into the running moments."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_many(self, values: Iterable[float]) -> None:
        """Fold every element of ``values`` into the running moments."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Sample variance (``n - 1`` denominator); 0 for < 2 samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new ``RunningStats`` equal to the union of samples."""
        merged = RunningStats()
        total = self.count + other.count
        if total == 0:
            return merged
        delta = other.mean - self.mean
        merged.count = total
        merged.mean = self.mean + delta * other.count / total
        merged._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def __repr__(self) -> str:
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.4g}, "
            f"stddev={self.stddev:.4g})"
        )


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(xs, fractions)`` of the empirical CDF of ``samples``.

    ``fractions[i]`` is the fraction of samples ``<= xs[i]``; this matches
    the "fraction of nodes" CDF plots of Figures 11b and 14.
    """
    require(len(samples) > 0, "empirical_cdf needs at least one sample")
    xs = np.sort(np.asarray(samples, dtype=float))
    fractions = np.arange(1, len(xs) + 1, dtype=float) / len(xs)
    return xs, fractions


def cdf_at(samples: Sequence[float], threshold: float) -> float:
    """Fraction of ``samples`` that are ``<= threshold``.

    This is the primitive behind detection (fraction of freerider scores
    below the expulsion threshold) and false positives (fraction of honest
    scores below it).
    """
    arr = np.asarray(samples, dtype=float)
    require(arr.size > 0, "cdf_at needs at least one sample")
    return float(np.count_nonzero(arr <= threshold)) / arr.size


def histogram_density(
    samples: Sequence[float], bins: int = 50, value_range: Tuple[float, float] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(bin_centers, fraction_of_samples)`` for a histogram.

    Unlike :func:`numpy.histogram` with ``density=True``, the y-values are
    *fractions of samples per bin* — the unit used on the paper's pdf
    plots (Figures 10, 11a, 13).
    """
    arr = np.asarray(samples, dtype=float)
    require(arr.size > 0, "histogram_density needs at least one sample")
    counts, edges = np.histogram(arr, bins=bins, range=value_range)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, counts.astype(float) / arr.size


@dataclass
class EmpiricalDistribution:
    """A bag of scalar samples with the summaries the paper reports.

    Collects values (scores, entropies, lags) and exposes mean/stddev,
    CDF evaluation and histogram export.  Used by the metrics layer to
    build every figure's series.
    """

    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Record one sample."""
        self.samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        """Record many samples."""
        self.samples.extend(float(v) for v in values)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return float(np.mean(self.samples)) if self.samples else 0.0

    @property
    def stddev(self) -> float:
        """Sample standard deviation (0.0 for < 2 samples)."""
        return float(np.std(self.samples, ddof=1)) if len(self.samples) > 1 else 0.0

    @property
    def min(self) -> float:
        """Smallest sample."""
        require(bool(self.samples), "empty distribution has no min")
        return float(np.min(self.samples))

    @property
    def max(self) -> float:
        """Largest sample."""
        require(bool(self.samples), "empty distribution has no max")
        return float(np.max(self.samples))

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples ``<= threshold``."""
        return cdf_at(self.samples, threshold)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile of the samples."""
        require(bool(self.samples), "empty distribution has no quantiles")
        return float(np.quantile(self.samples, q))

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF as ``(xs, fractions)``."""
        return empirical_cdf(self.samples)

    def pdf(self, bins: int = 50, value_range: Tuple[float, float] = None):
        """Histogram density as ``(bin_centers, fractions)``."""
        return histogram_density(self.samples, bins=bins, value_range=value_range)
