"""Small validation helpers used across the code base.

The simulator and the protocol implementation validate their inputs
eagerly: a mis-configured experiment should fail at construction time
with a clear message, not after minutes of simulation.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str, *args: Any) -> None:
    """Raise :class:`ValueError` with ``message % args`` unless ``condition``.

    Using ``%``-style lazy formatting keeps the hot paths cheap when the
    condition holds (the common case).

    >>> require(1 + 1 == 2, "math is broken")
    >>> require(False, "bad fanout %d", -3)
    Traceback (most recent call last):
        ...
    ValueError: bad fanout -3
    """
    if not condition:
        raise ValueError(message % args if args else message)


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it."""
    require(0.0 <= value <= 1.0, "%s must be a probability in [0, 1], got %r", name, value)
    return float(value)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    require(value > 0, "%s must be > 0, got %r", name, value)
    return value


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    require(value >= 0, "%s must be >= 0, got %r", name, value)
    return value
