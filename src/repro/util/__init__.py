"""Shared utilities: deterministic RNG plumbing, statistics, multisets.

These helpers are deliberately dependency-light; every other subpackage
builds on them.  All randomness in the repository flows through
:mod:`repro.util.rng` so that experiments are reproducible from a single
integer seed.
"""

from repro.util.multiset import Multiset
from repro.util.rng import SeedSequenceFactory, derive_seed, make_generator
from repro.util.stats import (
    EmpiricalDistribution,
    RunningStats,
    empirical_cdf,
    histogram_density,
)
from repro.util.validation import require

__all__ = [
    "EmpiricalDistribution",
    "Multiset",
    "RunningStats",
    "SeedSequenceFactory",
    "derive_seed",
    "empirical_cdf",
    "histogram_density",
    "make_generator",
    "require",
]
