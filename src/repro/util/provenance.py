"""Where did this result come from?

Every :class:`~repro.scenarios.spec.RunResult` is stamped with a small
provenance record — the git revision the code ran at, whether the tree
was dirty, and a machine fingerprint — so that archived envelopes and
benchmark baselines can be traced back to the exact code and host that
produced them.  Collection is best-effort: outside a git checkout the
revision reads ``"unknown"`` rather than failing the run.
"""

from __future__ import annotations

import hashlib
import os
import platform
import subprocess
import sys
from typing import Dict, Optional

__all__ = ["collect_provenance"]

_CACHE: Optional[Dict[str, object]] = None


def _git(*args: str) -> Optional[str]:
    """One git plumbing call against the source tree, or None."""
    try:
        out = subprocess.run(
            ("git", *args),
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            timeout=5.0,
            text=True,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def collect_provenance() -> Dict[str, object]:
    """The provenance record for results produced by this process.

    Cached after the first call — one subprocess round-trip per process,
    not per scenario run.  Returns a copy; callers may augment it.
    """
    global _CACHE
    if _CACHE is None:
        rev = _git("rev-parse", "HEAD") or "unknown"
        status = _git("status", "--porcelain")
        node = platform.node() or "unknown"
        machine = {
            "hostname": node,
            "system": platform.system(),
            "machine": platform.machine(),
            "python": platform.python_version(),
        }
        # A short stable host fingerprint: lets baseline comparisons say
        # "same machine?" without archiving raw hostnames forever.
        digest = hashlib.sha256(
            "|".join(
                (node, platform.system(), platform.machine(), sys.platform)
            ).encode("utf-8")
        ).hexdigest()
        _CACHE = {
            "git_revision": rev,
            "git_dirty": bool(status) if status is not None else None,
            "fingerprint": digest[:12],
            **machine,
        }
    return dict(_CACHE)
