"""A counting multiset with the entropy operations LiFTinG's audits need.

Local history auditing (paper §5.3) inspects the *multiset* ``F_h`` of
partners a node proposed to during the last ``n_h`` gossip periods, and
the multiset ``F'_h`` of nodes that cross-checked it (its fanin).  The
audit computes the Shannon entropy of the empirical distribution of the
multiset and compares it with the threshold ``γ``.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Tuple, TypeVar

T = TypeVar("T", bound=Hashable)


class Multiset(Generic[T]):
    """Multiset (bag) of hashable elements with entropy support.

    >>> m = Multiset([1, 2, 2, 3])
    >>> m.count(2)
    2
    >>> len(m)
    4
    >>> round(m.shannon_entropy(), 3)
    1.5
    """

    __slots__ = ("_counts", "_size")

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._counts: Counter = Counter(items)
        self._size = sum(self._counts.values())

    def add(self, item: T, count: int = 1) -> None:
        """Insert ``count`` occurrences of ``item``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._counts[item] += count
        self._size += count

    def discard(self, item: T, count: int = 1) -> None:
        """Remove up to ``count`` occurrences of ``item`` (no error if absent)."""
        present = self._counts.get(item, 0)
        removed = min(present, count)
        if removed:
            if present == removed:
                del self._counts[item]
            else:
                self._counts[item] = present - removed
            self._size -= removed

    def count(self, item: T) -> int:
        """Number of occurrences of ``item``."""
        return self._counts.get(item, 0)

    def distinct(self) -> int:
        """Number of distinct elements."""
        return len(self._counts)

    def elements(self) -> Iterator[T]:
        """Iterate over elements with multiplicity."""
        return iter(self._counts.elements())

    def items(self) -> Iterator[Tuple[T, int]]:
        """Iterate over ``(element, count)`` pairs."""
        return iter(self._counts.items())

    def support(self) -> List[T]:
        """The distinct elements as a list."""
        return list(self._counts.keys())

    def frequencies(self) -> Dict[T, float]:
        """Empirical distribution: element -> count / total."""
        if self._size == 0:
            return {}
        return {item: count / self._size for item, count in self._counts.items()}

    def shannon_entropy(self) -> float:
        """Shannon entropy (base 2) of the empirical distribution.

        This is Eq. (1) of the paper: ``H(d̃) = -Σ d̃_i log2 d̃_i`` where
        ``d̃_i`` is the normalised occurrence count of node ``i``.  An
        empty multiset has entropy 0 by convention.
        """
        if self._size == 0:
            return 0.0
        total = self._size
        entropy = 0.0
        for count in self._counts.values():
            p = count / total
            entropy -= p * math.log2(p)
        return entropy

    def max_entropy(self) -> float:
        """Entropy if every occurrence were of a distinct element.

        Equals ``log2(len(self))`` — the paper's bound ``log2(n_h f)``
        for a fanout history of ``n_h f`` entries.
        """
        return math.log2(self._size) if self._size > 0 else 0.0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, item: object) -> bool:
        return item in self._counts

    def __iter__(self) -> Iterator[T]:
        return self.elements()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        return f"Multiset({dict(self._counts)!r})"

    def copy(self) -> "Multiset[T]":
        """A shallow copy."""
        clone: Multiset[T] = Multiset()
        clone._counts = Counter(self._counts)
        clone._size = self._size
        return clone

    def union(self, other: "Multiset[T]") -> "Multiset[T]":
        """Multiset sum (counts add)."""
        clone = self.copy()
        for item, count in other.items():
            clone.add(item, count)
        return clone
