"""A counting multiset with the entropy operations LiFTinG's audits need.

Local history auditing (paper §5.3) inspects the *multiset* ``F_h`` of
partners a node proposed to during the last ``n_h`` gossip periods, and
the multiset ``F'_h`` of nodes that cross-checked it (its fanin).  The
audit computes the Shannon entropy of the empirical distribution of the
multiset and compares it with the threshold ``γ``.

Performance notes
-----------------
* **Incremental entropy.**  The multiset maintains
  ``Σ c·log2(c)`` across mutations, so :meth:`shannon_entropy` is O(1)
  via the algebraic identity ``H = log2(T) - Σ c·log2(c) / T`` (with
  ``T`` the total count) instead of an O(distinct) re-summation.  The
  history and audit layers mutate their multisets once per event and
  read entropy per audit, so the maintained form moves the cost off the
  hot path.  The identity is exact in real arithmetic; in floats the
  incremental accumulator can differ from a fresh summation by a few
  ulps (irrelevant against the audit thresholds, which carry
  whole-bit margins).
* **Array-backed counting.**  :meth:`add_ids` bulk-ingests an array of
  small non-negative integers (node ids) through ``numpy.bincount`` —
  one vectorised pass instead of a Python-level loop per element — and
  :func:`entropy_of_counts` computes the entropy of a raw count vector
  without building a multiset at all.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Generic, Hashable, Iterable, Iterator, List, Tuple, TypeVar

import numpy as np

T = TypeVar("T", bound=Hashable)

_log2 = math.log2

#: Precomputed ``c*log2(c)`` for small counts — the incremental-entropy
#: accumulator updates hit counts far below this bound in practice
#: (history windows are a few hundred entries), so the table turns the
#: per-mutation ``log2`` call into a list index.
_CLOGC_LIMIT = 1024
_CLOGC = [0.0, 0.0] + [c * math.log2(c) for c in range(2, _CLOGC_LIMIT)]


def entropy_of_counts(counts: "np.ndarray") -> float:
    """Shannon entropy (base 2) of a vector of occurrence counts.

    Zero counts are ignored; an all-zero (or empty) vector has entropy
    0.0 by the same convention as :meth:`Multiset.shannon_entropy`.
    """
    counts = np.asarray(counts, dtype=float)
    counts = counts[counts > 0]
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts / total
    return float(-(p * np.log2(p)).sum())


class Multiset(Generic[T]):
    """Multiset (bag) of hashable elements with entropy support.

    >>> m = Multiset([1, 2, 2, 3])
    >>> m.count(2)
    2
    >>> len(m)
    4
    >>> round(m.shannon_entropy(), 3)
    1.5
    """

    __slots__ = ("_counts", "_size", "_clogc")

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._counts: Counter = Counter(items)
        self._size = sum(self._counts.values())
        #: maintained Σ c·log2(c) over all element counts.
        self._clogc = sum(c * _log2(c) for c in self._counts.values() if c > 1)

    def add(self, item: T, count: int = 1) -> None:
        """Insert ``count`` occurrences of ``item``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        counts = self._counts
        old = counts.get(item, 0)
        new = old + count
        counts[item] = new
        self._size += count
        if new < _CLOGC_LIMIT:
            self._clogc += _CLOGC[new] - _CLOGC[old]
        else:
            clogc = self._clogc + new * _log2(new)
            if old > 1:
                clogc -= old * _log2(old)
            self._clogc = clogc

    def add_ids(self, ids) -> None:
        """Bulk-insert an array of small non-negative integer elements.

        ``ids`` is anything ``numpy.bincount`` accepts (a list or array
        of non-negative ints).  This is the array-backed fast path used
        when ingesting whole histories (audit fanout construction): one
        vectorised counting pass, then one accumulator update per
        *distinct* element instead of per occurrence.
        """
        binned = np.bincount(np.asarray(ids, dtype=np.intp))
        for value in np.flatnonzero(binned):
            self.add(int(value), int(binned[value]))

    def discard(self, item: T, count: int = 1) -> None:
        """Remove up to ``count`` occurrences of ``item`` (no error if absent)."""
        present = self._counts.get(item, 0)
        removed = min(present, count)
        if removed:
            remaining = present - removed
            if remaining == 0:
                del self._counts[item]
            else:
                self._counts[item] = remaining
            self._size -= removed
            if self._size == 0:
                # Re-anchor the accumulator so incremental float error
                # can never survive an empty state.
                self._clogc = 0.0
            elif present < _CLOGC_LIMIT:
                self._clogc += _CLOGC[remaining] - _CLOGC[present]
            else:
                clogc = self._clogc - present * _log2(present)
                if remaining > 1:
                    clogc += remaining * _log2(remaining)
                self._clogc = clogc

    def count(self, item: T) -> int:
        """Number of occurrences of ``item``."""
        return self._counts.get(item, 0)

    def distinct(self) -> int:
        """Number of distinct elements."""
        return len(self._counts)

    def elements(self) -> Iterator[T]:
        """Iterate over elements with multiplicity."""
        return iter(self._counts.elements())

    def items(self) -> Iterator[Tuple[T, int]]:
        """Iterate over ``(element, count)`` pairs."""
        return iter(self._counts.items())

    def support(self) -> List[T]:
        """The distinct elements as a list."""
        return list(self._counts.keys())

    def counts_array(self) -> "np.ndarray":
        """The occurrence counts as a numpy vector (order unspecified)."""
        return np.fromiter(self._counts.values(), dtype=np.intp, count=len(self._counts))

    def frequencies(self) -> Dict[T, float]:
        """Empirical distribution: element -> count / total."""
        if self._size == 0:
            return {}
        return {item: count / self._size for item, count in self._counts.items()}

    def shannon_entropy(self) -> float:
        """Shannon entropy (base 2) of the empirical distribution.

        This is Eq. (1) of the paper: ``H(d̃) = -Σ d̃_i log2 d̃_i`` where
        ``d̃_i`` is the normalised occurrence count of node ``i``,
        evaluated in O(1) from the maintained ``Σ c·log2(c)``
        accumulator via ``H = log2(T) - Σ c·log2(c) / T``.  An empty
        multiset has entropy 0 by convention.
        """
        size = self._size
        if size == 0:
            return 0.0
        entropy = _log2(size) - self._clogc / size
        return entropy if entropy > 0.0 else 0.0

    def max_entropy(self) -> float:
        """Entropy if every occurrence were of a distinct element.

        Equals ``log2(len(self))`` — the paper's bound ``log2(n_h f)``
        for a fanout history of ``n_h f`` entries.
        """
        return _log2(self._size) if self._size > 0 else 0.0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, item: object) -> bool:
        return item in self._counts

    def __iter__(self) -> Iterator[T]:
        return self.elements()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Multiset):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:
        return f"Multiset({dict(self._counts)!r})"

    def copy(self) -> "Multiset[T]":
        """A shallow copy."""
        clone: Multiset[T] = Multiset()
        clone._counts = Counter(self._counts)
        clone._size = self._size
        clone._clogc = self._clogc
        return clone

    def union(self, other: "Multiset[T]") -> "Multiset[T]":
        """Multiset sum (counts add)."""
        clone = self.copy()
        for item, count in other.items():
            clone.add(item, count)
        return clone
