"""Deterministic randomness plumbing.

Every stochastic component in the repository (simulator, protocol nodes,
Monte-Carlo engine, workload generators) receives its randomness from a
:class:`numpy.random.Generator` or :class:`random.Random` created here.
Child streams are derived with :func:`derive_seed`, which hashes a parent
seed together with a string label; this gives independent, reproducible
streams per component without manual seed bookkeeping, and adding a new
component never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

import numpy as np

_MASK_63 = (1 << 63) - 1


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a string ``label``.

    The derivation is a SHA-256 hash of the parent seed and label, so it
    is stable across Python versions and platforms (unlike ``hash()``).

    >>> derive_seed(42, "network") == derive_seed(42, "network")
    True
    >>> derive_seed(42, "network") != derive_seed(42, "nodes")
    True
    """
    payload = f"{parent_seed}:{label}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & _MASK_63


def make_generator(seed: int, label: str = "") -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for ``(seed, label)``."""
    return np.random.default_rng(derive_seed(seed, label) if label else seed)


def make_random(seed: int, label: str = "") -> random.Random:
    """Create a stdlib :class:`random.Random` for ``(seed, label)``."""
    return random.Random(derive_seed(seed, label) if label else seed)


class SeedSequenceFactory:
    """Hands out labelled, reproducible child seeds and generators.

    A factory wraps a single root seed; components ask it for their own
    stream by name::

        seeds = SeedSequenceFactory(root_seed=7)
        net_rng = seeds.generator("network")
        node_rng = seeds.generator("node", 12)   # per-node stream

    Repeated calls with the same label return generators with identical
    streams, which makes it easy to re-create a component mid-experiment.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)

    def seed(self, label: str, *indices: int) -> int:
        """Return the child seed for ``label`` (plus optional indices)."""
        full_label = label if not indices else label + "/" + "/".join(map(str, indices))
        return derive_seed(self.root_seed, full_label)

    def generator(self, label: str, *indices: int) -> np.random.Generator:
        """Return a numpy generator for ``label`` (plus optional indices)."""
        return np.random.default_rng(self.seed(label, *indices))

    def random(self, label: str, *indices: int) -> random.Random:
        """Return a stdlib ``random.Random`` for ``label``."""
        return random.Random(self.seed(label, *indices))

    def spawn(self, label: str) -> "SeedSequenceFactory":
        """Return a sub-factory rooted at the child seed for ``label``."""
        return SeedSequenceFactory(self.seed(label))

    def stream(self, label: str) -> Iterator[int]:
        """Yield an endless, reproducible sequence of child seeds."""
        index = 0
        while True:
            yield self.seed(label, index)
            index += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(root_seed={self.root_seed})"
