"""Central parameter sets — the code realisation of the paper's Table 4.

Two dataclasses cover every knob used in the paper:

* :class:`GossipParams` — the three-phase dissemination protocol (§3):
  system size ``n``, fanout ``f``, gossip period ``T_g``, stream bitrate
  and chunking.
* :class:`LiftingParams` — LiFTinG itself (§5–6): verification
  probability ``p_dcc``, history length ``n_h``, manager count ``M``,
  detection thresholds ``η`` (score) and ``γ`` (entropy), the assumed
  loss rate used for blame compensation, and timeouts.

Both validate eagerly so that impossible configurations fail at
construction time.  The module also provides the two canonical
configurations of the paper: the analysis setting (n=10,000, f=12,
|R|=4, 7 % loss) and the PlanetLab setting (n=300, f=7, T_g=500 ms,
674 kbps, M=25, 4 % loss).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.util.validation import require, require_probability


@dataclass(frozen=True)
class GossipParams:
    """Parameters of the three-phase gossip dissemination protocol (§3).

    Attributes
    ----------
    n:
        Number of nodes in the system (excluding the source).
    fanout:
        ``f`` — partners contacted per propose phase; the paper uses
        ``f ≈ ln(n)`` for reliability (f=12 at n=10,000; f=7 at n=300).
    gossip_period:
        ``T_g`` in seconds (0.5 s on PlanetLab).
    stream_rate_kbps:
        Source bitrate in kilobits/second (674 in most experiments).
    chunk_size:
        Payload bytes per chunk.  With the default 4 KiB and 674 kbps
        the source emits ~2.6 chunks/second... see ``chunks_per_second``.
    source_fanout:
        How many random nodes the source pushes each fresh chunk to.
    request_size:
        ``|R|`` — the per-proposal request size the *analysis* assumes
        constant (4 in the paper); the simulator requests whatever is
        needed, this value drives the analytical formulas and the
        Monte-Carlo engine.
    """

    n: int = 300
    fanout: int = 7
    gossip_period: float = 0.5
    stream_rate_kbps: float = 674.0
    chunk_size: int = 4096
    source_fanout: int = 7
    request_size: int = 4

    def __post_init__(self) -> None:
        require(self.n >= 2, "need at least 2 nodes, got %d", self.n)
        require(1 <= self.fanout < self.n, "fanout must be in [1, n), got %d", self.fanout)
        require(self.gossip_period > 0, "gossip_period must be > 0")
        require(self.stream_rate_kbps >= 0, "stream_rate_kbps must be >= 0")
        require(self.chunk_size > 0, "chunk_size must be > 0")
        require(self.source_fanout >= 1, "source_fanout must be >= 1")
        require(self.request_size >= 1, "request_size must be >= 1")

    @property
    def chunks_per_second(self) -> float:
        """Fresh chunks the source must emit per second to sustain the rate."""
        return self.stream_rate_kbps * 125.0 / self.chunk_size

    @property
    def chunk_interval(self) -> float:
        """Seconds between consecutive chunk creations at the source."""
        return self.chunk_size / (self.stream_rate_kbps * 125.0)

    @property
    def periods_per_second(self) -> float:
        """Gossip periods per second (``1 / T_g``)."""
        return 1.0 / self.gossip_period

    def with_rate(self, stream_rate_kbps: float) -> "GossipParams":
        """Copy with a different stream bitrate (Table 5 sweeps this)."""
        return replace(self, stream_rate_kbps=stream_rate_kbps)


@dataclass(frozen=True)
class LiftingParams:
    """Parameters of LiFTinG (§5, §6 — the rest of Table 4).

    Attributes
    ----------
    p_dcc:
        Probability that a server triggers direct cross-checking after
        receiving an ack (0 = never, 1 = always).
    managers:
        ``M`` — number of reputation managers per node (25 on PlanetLab).
    history_periods:
        ``n_h = h / T_g`` — gossip periods kept in the audit history.
    eta:
        ``η`` — expulsion threshold on the normalised score (−9.75).
    gamma:
        ``γ`` — entropy threshold for history audits (8.95 in §6.3.2).
    assumed_loss_rate:
        ``p_l`` the deployment assumes when compensating wrongful blames
        (7 % in the analysis, 4 % observed on PlanetLab).
    ack_timeout:
        Seconds a server waits for the ack after serving before blaming
        ``f``; the protocol requires re-proposal within one gossip
        period, so this defaults to slightly more than ``2 T_g``.
    serve_timeout:
        Seconds a requester waits for requested chunks before running
        the direct verification (blame ``f/|R|`` per missing chunk).
    confirm_timeout:
        Seconds a verifier waits for witness confirm responses.
    witness_answer_delay:
        Seconds a witness waits before evaluating and answering a
        confirm request.  A confirm can overtake the propose it asks
        about (the verifier is only two short hops behind), so answering
        immediately would produce spurious contradictions; deferring the
        answer lets the propose arrive first.  Must be comfortably below
        ``confirm_timeout``.
    expel_quorum:
        Fraction of a node's managers that must independently observe
        ``score < η`` before the node is expelled.
    min_periods_before_expel:
        Grace period (in gossip periods) before score-based expulsion
        — a brand-new node has too noisy a normalised score.
    """

    p_dcc: float = 1.0
    managers: int = 25
    history_periods: int = 50
    eta: float = -9.75
    gamma: float = 8.95
    assumed_loss_rate: float = 0.04
    ack_timeout: float = 1.25
    serve_timeout: float = 0.75
    confirm_timeout: float = 0.75
    witness_answer_delay: float = 0.2
    expel_quorum: float = 0.5
    min_periods_before_expel: int = 20

    def __post_init__(self) -> None:
        require_probability(self.p_dcc, "p_dcc")
        require(self.managers >= 1, "managers must be >= 1, got %d", self.managers)
        require(self.history_periods >= 1, "history_periods must be >= 1")
        require_probability(self.assumed_loss_rate, "assumed_loss_rate")
        require(self.ack_timeout > 0, "ack_timeout must be > 0")
        require(self.serve_timeout > 0, "serve_timeout must be > 0")
        require(self.confirm_timeout > 0, "confirm_timeout must be > 0")
        require(
            0 <= self.witness_answer_delay < self.confirm_timeout,
            "witness_answer_delay must be in [0, confirm_timeout)",
        )
        require_probability(self.expel_quorum, "expel_quorum")
        require(self.min_periods_before_expel >= 0, "min_periods_before_expel must be >= 0")
        require(self.gamma >= 0, "gamma must be >= 0")

    @property
    def p_reception(self) -> float:
        """``p_r = 1 - p_l`` under the assumed loss rate."""
        return 1.0 - self.assumed_loss_rate


@dataclass(frozen=True)
class FreeriderDegree:
    """The paper's degree of freeriding ``Δ = (δ1, δ2, δ3)`` (§6.3.1).

    * ``delta1`` — fanout decrease: contact only ``(1-δ1)·f`` partners.
    * ``delta2`` — partial propose: drop the chunks received from a
      proportion ``δ2`` of the servers of the previous period.
    * ``delta3`` — partial serve: serve only ``(1-δ3)·|R|`` of each
      request.
    """

    delta1: float = 0.0
    delta2: float = 0.0
    delta3: float = 0.0

    def __post_init__(self) -> None:
        require_probability(self.delta1, "delta1")
        require_probability(self.delta2, "delta2")
        require_probability(self.delta3, "delta3")

    @classmethod
    def uniform(cls, delta: float) -> "FreeriderDegree":
        """Δ with ``δ1 = δ2 = δ3 = δ`` (used by Figure 12)."""
        return cls(delta, delta, delta)

    @property
    def bandwidth_gain(self) -> float:
        """Upload bandwidth saved: ``1 - (1-δ1)(1-δ2)(1-δ3)`` (§6.3.1)."""
        return 1.0 - (1.0 - self.delta1) * (1.0 - self.delta2) * (1.0 - self.delta3)

    def effective_fanout(self, fanout: int) -> int:
        """``f̂`` — the number of partners a freerider actually contacts."""
        return max(0, int(round((1.0 - self.delta1) * fanout)))

    def as_tuple(self) -> Tuple[float, float, float]:
        """``(δ1, δ2, δ3)``."""
        return (self.delta1, self.delta2, self.delta3)

    def __str__(self) -> str:
        return f"Δ=({self.delta1:g},{self.delta2:g},{self.delta3:g})"


HONEST_DEGREE = FreeriderDegree(0.0, 0.0, 0.0)


def analysis_params() -> Tuple[GossipParams, LiftingParams]:
    """The analysis/Monte-Carlo setting of §6 (Figures 10–13)."""
    gossip = GossipParams(
        n=10_000,
        fanout=12,
        gossip_period=0.5,
        stream_rate_kbps=674.0,
        request_size=4,
    )
    lifting = LiftingParams(
        p_dcc=1.0,
        managers=25,
        history_periods=50,
        eta=-9.75,
        gamma=8.95,
        assumed_loss_rate=0.07,
    )
    return gossip, lifting


def planetlab_params() -> Tuple[GossipParams, LiftingParams]:
    """The PlanetLab deployment setting of §7 (Figures 1, 14, Table 5)."""
    gossip = GossipParams(
        n=300,
        fanout=7,
        gossip_period=0.5,
        stream_rate_kbps=674.0,
        request_size=4,
    )
    lifting = LiftingParams(
        p_dcc=1.0,
        managers=25,
        history_periods=50,
        eta=-9.75,
        gamma=8.95,
        assumed_loss_rate=0.04,
    )
    return gossip, lifting


def recommended_fanout(n: int) -> int:
    """``f`` slightly above ``ln(n)`` for reliable dissemination [16].

    >>> recommended_fanout(10_000)
    12
    """
    require(n >= 2, "n must be >= 2, got %d", n)
    return max(1, int(round(math.log(n))) + 3)
