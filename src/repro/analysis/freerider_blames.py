"""Expected blames applied to freeriders, ``b̃'(Δ)`` (§6.3.1).

A freerider of degree ``Δ = (δ1, δ2, δ3)`` collects, per gossip period:

* the direct-verification blames of its ``(1-δ1)f`` partners, inflated
  by its partial serves (``δ3``);
* blame ``f`` from each of the ``δ2·f`` verifiers whose chunks it
  silently dropped from its proposal;
* the cross-checking blames of the remaining ``(1-δ2)f`` verifiers,
  inflated by its reduced fanout (each of the ``δ1·f`` missing witnesses
  is one contradictory testimony).

The paper's closed form (reproduced verbatim by
:func:`expected_blame_freerider` at ``p_dcc = 1``)::

    b̃'(Δ) = (1-δ1)·p_r(1-p_r²(1-δ3))·f²  +  δ2·f²
           + (1-δ2)·p_r²·[ p_r^{|R|+1}(1-p_r³(1-δ1)) + (1-p_r^{|R|+1}) ]·f²

Setting ``Δ = (0,0,0)`` recovers the honest expectation ``b̃`` (Eq. 5).
"""

from __future__ import annotations

from repro.analysis.wrongful_blames import expected_blame_honest
from repro.config import FreeriderDegree
from repro.util.validation import require, require_probability


def expected_blame_freerider(
    degree: FreeriderDegree,
    f: int,
    request_size: int,
    p_r: float,
    p_dcc: float = 1.0,
) -> float:
    """``b̃'(Δ)`` — expected per-period blame of a freerider.

    Generalised to ``p_dcc`` the same way as Eq. (3): the per-witness
    term requires a confirm round for the *present* witnesses, while the
    ``δ1·f`` missing witnesses are detected from the ack alone (the ack
    lists fewer than ``f`` partners, Table 1's ``f - f̂`` blame) and the
    invalid-proposal term (a) needs no confirm either.

    >>> from repro.config import FreeriderDegree
    >>> honest = expected_blame_freerider(FreeriderDegree(0, 0, 0), 12, 4, 0.93)
    >>> round(honest, 2)   # reduces to Eq. (5)
    72.95
    """
    require(f >= 1, "fanout must be >= 1, got %d", f)
    require(request_size >= 1, "request_size must be >= 1")
    require_probability(p_r, "p_r")
    require_probability(p_dcc, "p_dcc")
    d1, d2, d3 = degree.as_tuple()
    f2 = float(f * f)

    # Direct verification by the (1-δ1)f partners.
    term_dv = (1.0 - d1) * p_r * (1.0 - p_r**2 * (1.0 - d3)) * f2

    # Verifiers whose chunks were dropped from the proposal: blame f each.
    term_dropped = d2 * f2

    # Cross-checking by the remaining verifiers.
    p_intact = p_r ** (request_size + 1)
    witness_miss = d1 + (1.0 - d1) * p_dcc * (1.0 - p_r**3)
    term_dcc = (1.0 - d2) * p_r**2 * (
        (1.0 - p_intact) * f2 + p_intact * witness_miss * f2
    )
    return term_dv + term_dropped + term_dcc


def expected_blame_excess(
    degree: FreeriderDegree,
    f: int,
    request_size: int,
    p_r: float,
    p_dcc: float = 1.0,
) -> float:
    """``b̃'(Δ) - b̃`` — how far a freerider's mean score drifts below 0.

    After compensation an honest node's normalised score has mean 0 and
    a freerider's has mean ``-(b̃'(Δ) - b̃)``; detection compares that
    drift to the threshold ``η``.
    """
    return expected_blame_freerider(degree, f, request_size, p_r, p_dcc) - (
        expected_blame_honest(f, request_size, p_r, p_dcc)
    )
