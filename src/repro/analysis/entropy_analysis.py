"""Entropy-based detection analysis (§6.3.2, Eq. 7).

The local audit compares the entropy of a node's partner history to a
threshold ``γ``.  A colluding freerider picks a colluder with
probability ``p_m`` (uniformly among the ``m'`` colluders) and an honest
node otherwise (uniformly among the rest).  Its history entropy is then
maximised by uniformity within each class::

    H(p_m) = -p_m log2(p_m / m') - (1 - p_m) log2((1 - p_m) / (n_h f - m'))

Eq. (7) sets ``H(p*_m) = γ`` and solves for the largest bias ``p*_m``
that evades detection; the paper's example (γ = 8.95, m' = 25,
n_h f = 600) gives ``p*_m ≈ 0.21``.
"""

from __future__ import annotations

import math

from scipy.optimize import brentq

from repro.util.validation import require, require_probability


def max_fanout_entropy(history_periods: int, f: int) -> float:
    """``log2(n_h f)`` — entropy when all history entries are distinct.

    >>> round(max_fanout_entropy(50, 12), 2)
    9.23
    """
    require(history_periods >= 1 and f >= 1, "history_periods and f must be >= 1")
    return math.log2(history_periods * f)


def collusion_entropy(p_m: float, m_colluders: int, history_size: int) -> float:
    """History entropy of a freerider with bias ``p_m`` (Eq. 7 RHS).

    Assumes uniform selection within the colluder class (``m'`` nodes)
    and within the honest class (``n_h f - m'`` slots) — the maximising
    choice, so this is the *best case for the freerider*.
    """
    require_probability(p_m, "p_m")
    require(m_colluders >= 1, "m_colluders must be >= 1")
    require(
        history_size > m_colluders,
        "history must exceed the coalition size (n_h f >> m'), got %d <= %d",
        history_size,
        m_colluders,
    )
    entropy = 0.0
    if p_m > 0:
        entropy -= p_m * math.log2(p_m / m_colluders)
    if p_m < 1:
        entropy -= (1.0 - p_m) * math.log2((1.0 - p_m) / (history_size - m_colluders))
    return entropy


def max_bias_probability(gamma: float, m_colluders: int, history_size: int) -> float:
    """``p*_m`` — the largest collusion bias that still passes the audit.

    Numerically inverts Eq. (7).  ``collusion_entropy`` is maximal at the
    unbiased point ``p_m = m'/(n_h f)`` and decreases towards
    ``log2(m')`` as ``p_m → 1``, so on that branch there is a single
    crossing of ``γ``.

    >>> round(max_bias_probability(8.95, 25, 600), 2)
    0.21
    """
    require(m_colluders >= 1, "m_colluders must be >= 1")
    require(history_size > m_colluders, "history must exceed the coalition size")
    uniform_pm = m_colluders / history_size
    h_max = collusion_entropy(uniform_pm, m_colluders, history_size)
    if gamma >= h_max:
        # The threshold exceeds even the unbiased entropy: any bias above
        # the uniform share is caught.
        return uniform_pm
    h_at_one = collusion_entropy(1.0, m_colluders, history_size)
    if gamma <= h_at_one:
        # Even full bias passes (γ too low / coalition too large).
        return 1.0
    return float(
        brentq(
            lambda pm: collusion_entropy(pm, m_colluders, history_size) - gamma,
            uniform_pm,
            1.0,
            xtol=1e-12,
        )
    )


def contribution_decrease_from_bias(p_m: float) -> float:
    """Extra contribution decrease collusion buys (§6.3.2).

    A freerider serving colluders ``p_m`` of the time effectively
    removes that fraction of its upload from the honest system — the
    paper concludes a 25-node coalition can decrease contribution by a
    further 21 % at γ = 8.95.
    """
    return require_probability(p_m, "p_m")


def achievable_collusion_entropy(p_m: float, m_colluders: int, history_size: int) -> float:
    """Best *integer-feasible* history entropy at bias ``p_m``.

    Eq. (7) idealises the honest picks as spreading ``(1-p_m)·n_h f``
    mass evenly over ``n_h f - m'`` bins — fractional occupancy, which
    no real history can have.  The feasible optimum makes every honest
    pick distinct (possible while ``n ≫ n_h f``) and serves colluders
    round-robin::

        H = -p_m log2(p_m / m') + (1 - p_m) log2(n_h f)

    This is what a real coalition can reach, so it (not Eq. 7) gives the
    operational bias ceiling; Eq. 7 upper-bounds it by ≈ 0.05–0.3 bits.
    """
    require_probability(p_m, "p_m")
    require(m_colluders >= 1, "m_colluders must be >= 1")
    require(history_size > m_colluders, "history must exceed the coalition size")
    entropy = (1.0 - p_m) * math.log2(history_size)
    if p_m > 0:
        entropy -= p_m * math.log2(p_m / m_colluders)
    return entropy


def achievable_max_bias(gamma: float, m_colluders: int, history_size: int) -> float:
    """The operational ceiling: largest ``p_m`` whose *achievable*
    entropy still passes ``γ`` (integer-feasible counterpart of
    :func:`max_bias_probability`)."""
    require(m_colluders >= 1, "m_colluders must be >= 1")
    require(history_size > m_colluders, "history must exceed the coalition size")
    uniform_pm = m_colluders / history_size
    h_max = achievable_collusion_entropy(uniform_pm, m_colluders, history_size)
    if gamma >= h_max:
        return uniform_pm
    if gamma <= achievable_collusion_entropy(1.0, m_colluders, history_size):
        return 1.0
    return float(
        brentq(
            lambda pm: achievable_collusion_entropy(pm, m_colluders, history_size) - gamma,
            uniform_pm,
            1.0,
            xtol=1e-12,
        )
    )


def gamma_for_window(history_size: int, headroom_bits: float = None) -> float:
    """A ``γ`` for a window of ``history_size`` entries.

    ``γ`` is meaningful only relative to the achievable maximum
    ``log2(n_h f)``: the paper's 8.95 sits 0.279 bits below
    ``log2 600 = 9.229``.  This helper scales that headroom to other
    window sizes so that deployments with different ``n_h·f`` keep the
    same false-expulsion margin.
    """
    require(history_size >= 2, "history_size must be >= 2")
    if headroom_bits is None:
        headroom_bits = math.log2(600) - 8.95
    require(headroom_bits >= 0, "headroom_bits must be >= 0")
    return math.log2(history_size) - headroom_bits


def required_history_for_bias(
    m_colluders: int,
    f: int,
    max_tolerated_bias: float,
    headroom_bits: float = None,
) -> int:
    """Smallest ``n_h`` keeping the evadable bias below ``max_tolerated_bias``.

    Sweeps ``n_h`` upward with ``γ`` scaled to the window (see
    :func:`gamma_for_window`); longer histories tighten the ceiling
    because the coalition can no longer fill the window without visible
    repetitions (the ``n_h f ≫ m'`` requirement of §6.3.2).
    """
    require(0 < max_tolerated_bias < 1, "max_tolerated_bias must be in (0, 1)")
    for n_h in range(max(1, (m_colluders // f) + 1), 100_000):
        history = n_h * f
        if history <= m_colluders:
            continue
        gamma = gamma_for_window(history, headroom_bits)
        if max_bias_probability(gamma, m_colluders, history) <= max_tolerated_bias:
            return n_h
    raise ValueError("no history length below 100000 achieves the target bias")
