"""Expected wrongful blames of honest nodes under message loss (§6.2).

Message losses make honest nodes look guilty: a lost request turns into
"the proposer served nothing", a lost ack into "the node never proposed
what it received".  The paper derives closed forms for the expected
blame per gossip period — Equations (2), (3), (4), (5) — and LiFTinG's
managers *compensate* scores by that expectation so that honest nodes
sit at score 0 and a fixed threshold ``η`` works.

All formulas take ``p_r = 1 - p_l`` (probability of reception).  The
cross-checking formula is generalised to arbitrary ``p_dcc`` (the paper
analyses ``p_dcc = 1``); setting ``p_dcc = 1`` recovers Eq. (3) exactly.
"""

from __future__ import annotations

from repro.util.validation import require, require_probability


def expected_blame_direct_verification(f: int, request_size: int, p_r: float) -> float:
    """Eq. (2): expected per-period blame from direct verification.

    For each of the ``f`` partners a node proposes to: if the proposal
    arrives but the request is lost, the requester blames ``f``; if both
    arrive, each of the ``|R|`` served chunks is lost independently and
    blamed ``f/|R|``::

        b̃_dv = f · [ p_r(1-p_r)·f + p_r²(1-p_r)·|R|·f/|R| ]
              = p_r (1 - p_r²) f²

    >>> round(expected_blame_direct_verification(12, 4, 0.93), 2)
    18.09
    """
    require(f >= 1, "fanout must be >= 1, got %d", f)
    require(request_size >= 1, "request_size must be >= 1")
    require_probability(p_r, "p_r")
    return p_r * (1.0 - p_r**2) * f * f


def expected_blame_cross_checking(
    f: int, request_size: int, p_r: float, p_dcc: float = 1.0
) -> float:
    """Eq. (3), generalised to ``p_dcc``.

    A node is inspected by the ``f`` verifiers that served it.  Per
    verifier (given the proposal/request interaction happened, ``p_r²``):

    * **(a)** if any of the ``|R|`` serves or the ack is lost
      (``1 - p_r^{|R|+1}``) the verifier deems the proposal invalid and
      blames ``f``.  This needs no confirm round, so it is *not* scaled
      by ``p_dcc``.
    * **(b)** otherwise the verifier cross-checks with probability
      ``p_dcc``; each of the ``f`` witnesses independently fails to
      return a valid confirmation when the propose, confirm or response
      is lost (``1 - p_r³``), costing blame 1.

    With ``p_dcc = 1`` this is the paper's
    ``b̃_dcc = p_r² (1 - p_r^{|R|+4}) f²``.

    >>> round(expected_blame_cross_checking(12, 4, 0.93), 2)
    54.85
    """
    require(f >= 1, "fanout must be >= 1, got %d", f)
    require(request_size >= 1, "request_size must be >= 1")
    require_probability(p_r, "p_r")
    require_probability(p_dcc, "p_dcc")
    p_intact = p_r ** (request_size + 1)
    per_verifier = (1.0 - p_intact) * f + p_intact * p_dcc * f * (1.0 - p_r**3)
    return p_r**2 * per_verifier * f


def expected_blame_honest(
    f: int, request_size: int, p_r: float, p_dcc: float = 1.0
) -> float:
    """Eq. (5): total expected wrongful blame per period, ``b̃``.

    This is the per-period compensation managers apply.  At
    ``p_dcc = 1``::

        b̃ = p_r (1 + p_r - p_r² - p_r^{|R|+5}) f²

    The paper's running example (f=12, |R|=4, p_l=7 %) gives 72.95
    (the exact value is 72.9447; the paper rounds up):

    >>> round(expected_blame_honest(12, 4, 0.93), 2)
    72.94
    """
    return expected_blame_direct_verification(f, request_size, p_r) + (
        expected_blame_cross_checking(f, request_size, p_r, p_dcc)
    )


def expected_blame_apcc(history_periods: int, f: int, p_r: float) -> float:
    """Eq. (4): expected wrongful blame of one a-posteriori audit.

    The auditor polls (over TCP, lossless) the alleged receivers of the
    ``n_h · f`` proposals in the history; a proposal whose original
    *propose message* was lost (probability ``1 - p_r``) is not
    acknowledged and draws blame 1::

        b̃_apcc = (1 - p_r) · n_h · f

    This compensation is applied only when a node is actually audited
    (§6.2), not every period.

    >>> round(expected_blame_apcc(50, 12, 0.93), 6)
    42.0
    """
    require(history_periods >= 1, "history_periods must be >= 1")
    require(f >= 1, "fanout must be >= 1")
    require_probability(p_r, "p_r")
    return (1.0 - p_r) * history_periods * f


def expected_blame_silent(
    f: int, request_size: int, p_r: float, periods: float, p_dcc: float = 1.0
) -> float:
    """Expected blame accrued by a node that is *silent* for ``periods``.

    A crashed (or departed) node stops proposing and serving entirely —
    the limiting freerider, ``δ = 1`` on every degree.  Every verifier
    interaction it would have participated in now draws the full blame:
    per period its ``f`` proposal slots each cost ``f`` (no proposal to
    verify directly) and its ``f`` inspector slots each cost up to ``f``
    cross-check blames, i.e. ``2 f²`` per period uncompensated, minus
    the honest-node compensation ``b̃`` managers already apply.

    This is the closed form behind blame *quarantine*: over a suspicion
    window of ``w`` periods a crashed honest node would accrue roughly
    ``w · (2 f² − b̃)`` net blame — far past ``η`` for any realistic
    window — which is why blames against suspects are held back until
    the suspicion resolves (refuted → discarded, confirmed dead and
    silent → released).

    >>> round(expected_blame_silent(12, 4, 0.93, 1.0), 2)
    215.06
    >>> expected_blame_silent(12, 4, 0.93, 0.0)
    0.0
    """
    require(periods >= 0.0, "periods must be >= 0")
    per_period = 2.0 * f * f - expected_blame_honest(f, request_size, p_r, p_dcc)
    return periods * per_period


def variance_blame_direct_verification(f: int, request_size: int, p_r: float) -> float:
    """Variance of the per-period direct-verification blame.

    The paper defers ``σ(b)`` to a technical report; for the DV term it
    is derivable exactly.  Per partner the blame is ``f`` with
    probability ``p_r(1-p_r)`` (request lost) or ``(f/|R|)·K`` with
    ``K ~ Binomial(|R|, 1-p_r)`` (chunk losses), independent across the
    ``f`` partners, so the variance is ``f`` times the per-partner
    variance.
    """
    require(f >= 1, "fanout must be >= 1")
    require(request_size >= 1, "request_size must be >= 1")
    require_probability(p_r, "p_r")
    p_loss = 1.0 - p_r
    unit = f / request_size
    # First and second moments of the per-partner blame.
    mean_request_lost = p_r * p_loss * f
    second_request_lost = p_r * p_loss * f * f
    # Chunk-loss branch: probability p_r^2, K ~ Binomial(|R|, 1-p_r).
    mean_k = request_size * p_loss
    var_k = request_size * p_loss * p_r
    second_k = var_k + mean_k**2
    mean_chunks = p_r**2 * unit * mean_k
    second_chunks = p_r**2 * unit**2 * second_k
    per_partner_mean = mean_request_lost + mean_chunks
    per_partner_second = second_request_lost + second_chunks
    per_partner_var = per_partner_second - per_partner_mean**2
    return f * per_partner_var
