"""Detection and false-positive bounds (§6.3.1).

After ``r`` periods the normalised score is
``s = -(1/r) Σ (b_i - b̃)``; assuming i.i.d. per-period blames,
``E[s] = 0`` for honest nodes and ``σ(s) = σ(b)/√r``.
Bienaymé–Tchebychev then bounds

* the false-positive probability
  ``β = P(s < η) ≤ σ(b)² / (r η²)``, and
* the detection probability
  ``α ≥ 1 - σ(b')² / (r · (E[excess] + η)²)``

where ``excess = b̃'(Δ) - b̃`` is the freerider's mean blame surplus.
(The paper writes the denominator as ``(b̃'(Δ) - η)²``, implicitly
measuring ``b̃'`` relative to the compensated baseline; we make the
subtraction of ``b̃`` explicit.)

Both bounds are loose — the Monte-Carlo engine provides the exact
distributions — but they are what allows a deployment to pick ``η``
and a minimum residence time ``r`` a priori.
"""

from __future__ import annotations

from repro.analysis.freerider_blames import expected_blame_excess
from repro.config import FreeriderDegree
from repro.util.validation import require


def beta_upper_bound(sigma_b: float, r: int, eta: float) -> float:
    """Upper bound on the false-positive probability ``β``.

    ``β = P(s < η) ≤ σ(b)² / (r η²)`` — meaningful only for ``η < 0``.
    The bound is clipped to [0, 1].
    """
    require(r >= 1, "r must be >= 1, got %d", r)
    require(eta < 0, "eta must be negative, got %r", eta)
    require(sigma_b >= 0, "sigma_b must be >= 0")
    return min(1.0, sigma_b**2 / (r * eta**2))


def alpha_lower_bound(sigma_b_freerider: float, r: int, eta: float, mean_excess: float) -> float:
    """Lower bound on the detection probability ``α``.

    ``mean_excess`` is ``b̃'(Δ) - b̃`` (see
    :func:`repro.analysis.freerider_blames.expected_blame_excess`).
    A freerider whose mean normalised score ``-mean_excess`` does not
    even reach the threshold (``-mean_excess >= η``) gets the trivial
    bound 0 — Tchebychev cannot promise detection there.
    """
    require(r >= 1, "r must be >= 1, got %d", r)
    require(sigma_b_freerider >= 0, "sigma must be >= 0")
    gap = mean_excess + eta  # distance of the mean score below η
    if gap <= 0:
        return 0.0
    return max(0.0, 1.0 - sigma_b_freerider**2 / (r * gap**2))


def freerider_score_expectation(
    degree: FreeriderDegree, f: int, request_size: int, p_r: float, p_dcc: float = 1.0
) -> float:
    """Expected normalised score of a freerider (``-(b̃'(Δ) - b̃)``)."""
    return -expected_blame_excess(degree, f, request_size, p_r, p_dcc)


def minimum_periods_for_beta(sigma_b: float, eta: float, beta_target: float) -> int:
    """Smallest residence time ``r`` with ``β``-bound below ``beta_target``.

    Deployments use this to set the grace period before score-based
    expulsion: "the performance of LiFTinG increases over time" (§6.3.1).
    """
    require(0 < beta_target < 1, "beta_target must be in (0, 1)")
    require(eta < 0, "eta must be negative")
    require(sigma_b > 0, "sigma_b must be > 0")
    import math

    return max(1, math.ceil(sigma_b**2 / (beta_target * eta**2)))
