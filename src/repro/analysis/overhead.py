"""Message-complexity model of the verifications (§6.1, Table 3).

The paper bounds the per-period message overhead of each verification
role; this module turns those bounds into explicit expected counts so
the simulator's measured traffic can be checked against them
(``benchmarks/bench_table3_message_overhead.py``).

Per gossip period and node (steady state, every node serves and is
served by ``f`` peers on average):

==========================  =======================================
direct verification          0 messages; up to ``f`` blames × M managers
acks (always sent)           ``f`` — one per server of the last period
cross-check, verifier        ``p_dcc · f²`` confirms sent
cross-check, witness         receives ``p_dcc · f²`` confirms, sends as many responses
cross-check, blames          up to ``p_dcc · M · f``
three-phase protocol itself  ``f(2 + |R|)`` (proposal + request + |R| serves)
==========================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require, require_probability


@dataclass(frozen=True)
class MessageCountModel:
    """Expected per-node per-period message counts for each role."""

    proposals: float
    requests: float
    serves: float
    acks: float
    confirms_sent: float
    confirm_responses_sent: float
    max_blame_messages: float

    @property
    def data_messages(self) -> float:
        """Messages of the dissemination protocol itself: ``f(2+|R|)``."""
        return self.proposals + self.requests + self.serves

    @property
    def verification_messages(self) -> float:
        """Messages added by LiFTinG's direct verifications."""
        return self.acks + self.confirms_sent + self.confirm_responses_sent

    @property
    def message_overhead_ratio(self) -> float:
        """Verification messages / data messages."""
        if self.data_messages == 0:
            return 0.0
        return self.verification_messages / self.data_messages


def expected_message_counts(
    f: int, request_size: int, p_dcc: float, managers: int
) -> MessageCountModel:
    """Steady-state expected message counts (Table 3 made concrete).

    >>> model = expected_message_counts(7, 4, 1.0, 25)
    >>> model.data_messages   # f(2+|R|)
    42.0
    >>> model.confirms_sent   # p_dcc f²
    49.0
    """
    require(f >= 1, "fanout must be >= 1, got %d", f)
    require(request_size >= 1, "request_size must be >= 1")
    require_probability(p_dcc, "p_dcc")
    require(managers >= 1, "managers must be >= 1")
    return MessageCountModel(
        proposals=float(f),
        requests=float(f),
        serves=float(f * request_size),
        acks=float(f),
        confirms_sent=p_dcc * f * f,
        confirm_responses_sent=p_dcc * f * f,
        max_blame_messages=float(managers * f) * (1.0 + p_dcc),
    )


def scaling_exponent(xs, ys) -> float:
    """Least-squares slope of log(y) against log(x).

    Used by the Table 3 benchmark to verify that measured verification
    traffic scales as ``O(f²)`` in the fanout: feeding measured counts
    for several fanouts should give a slope close to 2.
    """
    import numpy as np

    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    require(xs.size == ys.size and xs.size >= 2, "need >= 2 matching points")
    require(bool(np.all(xs > 0)) and bool(np.all(ys > 0)), "log-log fit needs positive data")
    slope, _intercept = np.polyfit(np.log(xs), np.log(ys), 1)
    return float(slope)
