"""Closed-form results of the paper's §6 analysis.

Pure functions of the protocol parameters — no simulation state — used
in three places: blame compensation inside the protocol (managers add
``b̃`` per period, §6.2), the detection/false-positive bounds (§6.3.1),
and the entropy threshold calibration (§6.3.2).  The Monte-Carlo engine
(:mod:`repro.mc`) validates every expectation here by sampling.
"""

from repro.analysis.detection import (
    alpha_lower_bound,
    beta_upper_bound,
    freerider_score_expectation,
)
from repro.analysis.entropy_analysis import (
    collusion_entropy,
    max_bias_probability,
    max_fanout_entropy,
)
from repro.analysis.freerider_blames import expected_blame_freerider
from repro.analysis.overhead import MessageCountModel, expected_message_counts
from repro.analysis.wrongful_blames import (
    expected_blame_apcc,
    expected_blame_cross_checking,
    expected_blame_direct_verification,
    expected_blame_honest,
)

__all__ = [
    "MessageCountModel",
    "alpha_lower_bound",
    "beta_upper_bound",
    "collusion_entropy",
    "expected_blame_apcc",
    "expected_blame_cross_checking",
    "expected_blame_direct_verification",
    "expected_blame_freerider",
    "expected_blame_honest",
    "expected_message_counts",
    "freerider_score_expectation",
    "max_bias_probability",
    "max_fanout_entropy",
]
