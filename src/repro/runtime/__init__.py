"""Asyncio runtime: the protocol over real sockets.

The paper deployed LiFTinG on PlanetLab; this package is the
deployment-shaped counterpart of the simulator.  The *same*
:class:`~repro.gossip.protocol.GossipNode` objects run unchanged — only
the transport facade differs:

* datagram traffic (propose / request / serve / ack / confirm / blame)
  goes over real UDP sockets on the loopback interface;
* audits and history polls go over real TCP connections;
* timers run on the asyncio event loop in real time.

An optional synthetic loss rate drops outgoing datagrams so that the
compensation machinery is exercised even on a loss-free loopback.

Intended for functional deployments of tens of nodes in one process
(see ``examples/live_cluster.py``); the discrete-event simulator remains
the tool for measurements.

The package also hosts the **parallel experiment orchestration** layer
(:mod:`repro.runtime.parallel`): a declarative job API that fans
independent simulated deployments out to a process pool with
bit-identical results, used by every ``run_*`` experiment via its
``jobs=`` parameter.
"""

from repro.runtime.cluster import RuntimeCluster, RuntimeConfig
from repro.runtime.faults import FaultEvent, FaultPlane, FaultSchedule
from repro.runtime.parallel import Job, JobResult, Task, resolve_jobs, run_jobs, run_tasks
from repro.runtime.resilience import (
    BoundedIngressQueue,
    CircuitBreaker,
    ResilienceConfig,
    RetryPolicy,
)
from repro.runtime.transport import AsyncTransport, NodeRegistry

__all__ = [
    "AsyncTransport",
    "BoundedIngressQueue",
    "CircuitBreaker",
    "FaultEvent",
    "FaultPlane",
    "FaultSchedule",
    "Job",
    "JobResult",
    "NodeRegistry",
    "ResilienceConfig",
    "RetryPolicy",
    "RuntimeCluster",
    "RuntimeConfig",
    "Task",
    "resolve_jobs",
    "run_jobs",
    "run_tasks",
]
