"""Scripted fault injection shared by the simulator and the live plane.

A :class:`FaultSchedule` is a declarative list of :class:`FaultEvent`
items — node crashes/restarts, message-class-targeted drops, (possibly
asymmetric) partitions and slow links — expressed in experiment time.
The schedule itself is inert data (JSON-friendly via
:meth:`FaultSchedule.from_dicts`); a :class:`FaultPlane` interprets it
against a clock:

* the **send hook** :meth:`FaultPlane.on_send` answers "what happens to
  this message right now" (pass / drop / extra delay) and is consulted
  by both ``Network.send_many`` (simulator) and
  ``AsyncTransport`` (live runtime);
* the **lifecycle events** (``crash`` / ``restart``) are applied by the
  owning cluster — ``SimCluster.attach_faults`` schedules them as
  simulator timers (leave/rejoin), ``RuntimeCluster`` runs a real-time
  driver task that tears endpoints down and rebinds them.

Both planes therefore run the *same* fault script, which is what makes
the ``chaos`` scenario's graceful-degradation claims transferable
between simulated and live runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.util.validation import require

NodeId = int

_INF = math.inf

#: the event vocabulary; anything else is a schedule error.
KINDS = ("crash", "restart", "drop", "partition", "slow")


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.

    ``crash``/``restart`` are instants (``at``) applied to ``nodes``;
    ``drop``/``partition``/``slow`` are windows ``[at, until)``:

    * ``drop`` — discard matching messages with probability ``rate``;
      ``classes`` restricts by wire-message class name (empty = all),
      ``src_nodes``/``dst_nodes`` restrict the endpoints (empty = any).
    * ``partition`` — sever ``group_a`` → ``group_b`` traffic; with
      ``symmetric`` (default) the reverse direction is severed too,
      otherwise the partition is asymmetric (a → b only), the harder
      case for accusation protocols.
    * ``slow`` — add ``extra_delay`` seconds to matching deliveries.
    """

    kind: str
    at: float
    until: float = _INF
    nodes: Tuple[NodeId, ...] = ()
    classes: Tuple[str, ...] = ()
    rate: float = 1.0
    src_nodes: Tuple[NodeId, ...] = ()
    dst_nodes: Tuple[NodeId, ...] = ()
    group_a: Tuple[NodeId, ...] = ()
    group_b: Tuple[NodeId, ...] = ()
    symmetric: bool = True
    extra_delay: float = 0.0

    def __post_init__(self) -> None:
        require(self.kind in KINDS, "unknown fault kind %r", self.kind)
        require(self.at >= 0.0, "fault time must be >= 0")
        require(self.until >= self.at, "fault window must not end before it starts")
        require(0.0 <= self.rate <= 1.0, "drop rate must be in [0, 1]")
        require(self.extra_delay >= 0.0, "extra_delay must be >= 0")
        if self.kind in ("crash", "restart"):
            require(len(self.nodes) > 0, "%s event needs nodes", self.kind)
        if self.kind == "partition":
            require(
                len(self.group_a) > 0 and len(self.group_b) > 0,
                "partition needs two non-empty groups",
            )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, validated collection of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    @classmethod
    def from_dicts(cls, raw: Iterable[Mapping]) -> "FaultSchedule":
        """Build a schedule from declarative dicts (e.g. parsed JSON).

        Sequence-valued fields accept any iterable; unknown keys are an
        error (typos must not silently disarm a fault).
        """
        events: List[FaultEvent] = []
        valid = {f for f in FaultEvent.__dataclass_fields__}
        for i, entry in enumerate(raw):
            unknown = set(entry) - valid
            require(not unknown, "fault %d: unknown keys %s", i, sorted(unknown))
            kwargs = dict(entry)
            for key in ("nodes", "classes", "src_nodes", "dst_nodes", "group_a", "group_b"):
                if key in kwargs:
                    kwargs[key] = tuple(kwargs[key])
            events.append(FaultEvent(**kwargs))
        return cls(events=tuple(sorted(events, key=lambda e: e.at)))

    @classmethod
    def churn(
        cls,
        nodes: Iterable[NodeId],
        duration: float,
        downtime: float,
        *,
        start_frac: float = 0.2,
        end_frac: float = 0.8,
        permanent_frac: float = 0.0,
    ) -> "FaultSchedule":
        """Scripted crash/restart churn over ``nodes``.

        Each node crashes once, the crash instants staggered evenly
        across ``[start_frac, end_frac]`` of the run (deterministic — no
        RNG — so churn scenarios are reproducible from parameters
        alone), and restarts ``downtime`` seconds later.  The last
        ``permanent_frac`` of the victims never restart, and restarts
        that would land inside the final 5% of the run are dropped: a
        node that stays down exercises the confirmed-dead path.
        """
        require(duration > 0.0, "duration must be > 0")
        require(downtime > 0.0, "downtime must be > 0")
        require(0.0 <= start_frac < end_frac <= 1.0, "need 0 <= start_frac < end_frac <= 1")
        require(0.0 <= permanent_frac <= 1.0, "permanent_frac must be in [0, 1]")
        victims = list(nodes)
        n_permanent = int(round(permanent_frac * len(victims)))
        events: List[FaultEvent] = []
        span = (end_frac - start_frac) * duration
        cutoff = 0.95 * duration
        for i, node in enumerate(victims):
            at = duration * start_frac + span * (i / max(1, len(victims)))
            events.append(FaultEvent(kind="crash", at=at, nodes=(node,)))
            back = at + downtime
            if i < len(victims) - n_permanent and back < cutoff:
                events.append(FaultEvent(kind="restart", at=back, nodes=(node,)))
        return cls(events=tuple(sorted(events, key=lambda e: e.at)))

    def lifecycle_events(self) -> Tuple[FaultEvent, ...]:
        """The crash/restart instants, in time order."""
        return tuple(e for e in self.events if e.kind in ("crash", "restart"))

    def window_events(self) -> Tuple[FaultEvent, ...]:
        """The windowed drop/partition/slow faults."""
        return tuple(e for e in self.events if e.kind in ("drop", "partition", "slow"))


class FaultPlane:
    """Interprets a :class:`FaultSchedule` against a clock.

    The hot entry point is :meth:`on_send`: it returns ``-1.0`` when the
    message must be dropped, otherwise the extra delivery delay in
    seconds (``0.0`` = unaffected).  Probabilistic drops draw from the
    plane's own seeded generator, so a faulted run is reproducible and
    an un-faulted run's RNG streams are untouched.
    """

    DROP = -1.0

    def __init__(
        self,
        schedule: FaultSchedule,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.schedule = schedule
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._drops = []
        self._partitions = []
        self._slows = []
        for event in schedule.window_events():
            if event.kind == "drop":
                self._drops.append(event)
            elif event.kind == "partition":
                self._partitions.append(
                    (event, frozenset(event.group_a), frozenset(event.group_b))
                )
            else:
                self._slows.append(event)
        #: class-name sets are precomputed per drop event.
        self._drop_specs = [
            (
                e,
                frozenset(e.classes) or None,
                frozenset(e.src_nodes) or None,
                frozenset(e.dst_nodes) or None,
            )
            for e in self._drops
        ]
        self.crashed: set = set()
        self.drops_injected: Dict[str, int] = {"drop": 0, "partition": 0}
        self.slowed = 0

    # -- lifecycle bookkeeping (the owning cluster applies the events) --
    def mark_crashed(self, node: NodeId) -> None:
        self.crashed.add(node)

    def mark_restarted(self, node: NodeId) -> None:
        self.crashed.discard(node)

    # -- the send hook --------------------------------------------------
    def on_send(self, now: float, src: NodeId, dst: NodeId, message: object) -> float:
        """Fate of one message: ``DROP`` or extra delay (0.0 = pass)."""
        for event, ga, gb in self._partitions:
            if event.at <= now < event.until:
                if (src in ga and dst in gb) or (
                    event.symmetric and src in gb and dst in ga
                ):
                    self.drops_injected["partition"] += 1
                    return self.DROP
        if self._drop_specs:
            name = message.__class__.__name__
            for event, classes, srcs, dsts in self._drop_specs:
                if not (event.at <= now < event.until):
                    continue
                if classes is not None and name not in classes:
                    continue
                if srcs is not None and src not in srcs:
                    continue
                if dsts is not None and dst not in dsts:
                    continue
                if event.rate >= 1.0 or float(self.rng.random()) < event.rate:
                    self.drops_injected["drop"] += 1
                    return self.DROP
        extra = 0.0
        for event in self._slows:
            if event.at <= now < event.until:
                if event.src_nodes and src not in event.src_nodes:
                    continue
                if event.dst_nodes and dst not in event.dst_nodes:
                    continue
                extra += event.extra_delay
        if extra:
            self.slowed += 1
        return extra

    def counters(self) -> Dict[str, int]:
        """JSON-safe injection counts for the metrics layer."""
        return {
            "targeted_drops": self.drops_injected["drop"],
            "partition_drops": self.drops_injected["partition"],
            "slowed_messages": self.slowed,
            "crashed_now": len(self.crashed),
        }
