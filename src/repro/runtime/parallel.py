"""Parallel experiment orchestration: fan independent deployments out
to a process pool with bit-identical results.

Every paper experiment drives one or more *independent* deployments:
Figure 1 runs three clusters, Table 5 sweeps a ``stream_rate × p_dcc``
grid, Figure 14 runs one cluster per ``p_dcc``, the Monte-Carlo figures
sweep degrees.  Each deployment is fully reproducible from its
:class:`~repro.experiments.cluster.ClusterConfig` (seeded RNG trees, no
shared state), so the runs are embarrassingly parallel.  This module is
the deployment-policy layer that exploits that — the protocol and
experiment code stay policy-free and merely declare *what* to run:

* :class:`Job` — one simulated deployment: a config, checkpoint times,
  and named extractor callables applied worker-side so that only small
  metric payloads (health curves, score snapshots, overhead reports)
  cross the process boundary instead of whole clusters.
* :class:`Task` — the generic work item (a picklable callable plus
  arguments) for non-cluster workloads such as the Monte-Carlo sweeps.
* :func:`run_jobs` / :func:`run_tasks` — execute a list of work items
  either serially (``jobs=1``) or on a ``ProcessPoolExecutor``.

Determinism contract
--------------------
Results are returned in submission order, every job carries its own
seed inside its config, and extraction happens in the worker from
exactly the state a serial run would have produced — so ``jobs=n``
yields **bit-identical** results to ``jobs=1`` for any ``n`` (pinned by
``tests/experiments/test_parallel_equivalence.py``).  Experiments must
therefore never derive per-job seeds *from the worker count*: the job
list is fixed first, then fanned out.

The pool uses the ``fork`` start method (workers inherit the imported
modules; spawning would re-import per worker).  On platforms without
``fork`` the runner silently degrades to the serial path, which is also
taken for ``jobs=1`` or single-item lists.  The effective worker count
is capped at ``os.cpu_count()`` (logged when it bites): CPU-bound
deployments cannot gain from oversubscription, only pay for it, so a
``jobs=4`` request on a 1-core container now runs serially instead of
0.5x slower — with identical results either way.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

logger = logging.getLogger(__name__)

__all__ = [
    "Job",
    "JobResult",
    "Task",
    "resolve_jobs",
    "run_jobs",
    "run_tasks",
]

#: worker-side extractor: maps a finished (or checkpointed) cluster to a
#: small picklable payload.  Must be a module-level callable or a
#: ``functools.partial`` of one, so it pickles by reference.
Extractor = Callable[[Any], Any]


@dataclass(frozen=True)
class Task:
    """A generic picklable work item: ``fn(*args, **kwargs)``.

    ``fn`` must be importable from the worker (a module-level function
    or a ``functools.partial`` of one).
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: opaque label echoed into logs/results assembly by the caller.
    key: Hashable = None


@dataclass(frozen=True)
class Job:
    """One independent simulated deployment.

    The worker builds ``SimCluster(config)``, advances it to each
    checkpoint time in ascending order, and applies every extractor at
    each checkpoint.  ``until`` is the final checkpoint; earlier
    snapshot times go in ``checkpoints``.
    """

    config: Any  # ClusterConfig (kept untyped to avoid an import cycle)
    until: float
    #: ``(name, fn)`` pairs; a mapping is accepted and normalised.
    extractors: Tuple[Tuple[str, Extractor], ...]
    checkpoints: Tuple[float, ...] = ()
    key: Hashable = None
    #: provenance — the resolved scenario parameters this job was built
    #: from, as ``(name, value)`` pairs (a mapping is accepted and
    #: normalised).  Purely descriptive: execution ignores it, but a
    #: result assembled from the job can report exactly which declared
    #: parameters produced it (see :mod:`repro.scenarios`).
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.extractors, Mapping):
            object.__setattr__(self, "extractors", tuple(self.extractors.items()))
        else:
            object.__setattr__(self, "extractors", tuple(self.extractors))
        object.__setattr__(
            self, "checkpoints", tuple(float(t) for t in self.checkpoints)
        )
        if isinstance(self.params, Mapping):
            object.__setattr__(self, "params", tuple(self.params.items()))
        else:
            object.__setattr__(self, "params", tuple(self.params))

    @property
    def times(self) -> Tuple[float, ...]:
        """All checkpoint times, ascending (``until`` included)."""
        return tuple(sorted(set(self.checkpoints) | {float(self.until)}))


@dataclass(frozen=True)
class JobResult:
    """Extracted payloads of one job, indexed by extractor and time."""

    key: Hashable
    times: Tuple[float, ...]
    #: ``series[name][time] -> payload``
    series: Dict[str, Dict[float, Any]]

    def at(self, name: str, time: float) -> Any:
        """The payload of extractor ``name`` at checkpoint ``time``."""
        return self.series[name][time]

    def get(self, name: str) -> Any:
        """The payload of extractor ``name`` at the final checkpoint."""
        return self.series[name][self.times[-1]]


def _execute_job(job: Job) -> JobResult:
    """Worker-side job body: build, run to each checkpoint, extract."""
    from repro.experiments.cluster import SimCluster

    cluster = SimCluster(job.config)
    times = job.times
    series: Dict[str, Dict[float, Any]] = {name: {} for name, _fn in job.extractors}
    for time in times:
        cluster.run(until=time)
        for name, extract in job.extractors:
            series[name][time] = extract(cluster)
    return JobResult(key=job.key, times=times, series=series)


def _execute_task(task: Task) -> Any:
    return task.fn(*task.args, **dict(task.kwargs))


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0``/negative → all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return int(jobs)


def _fork_context():
    """The ``fork`` multiprocessing context, or None when unsupported."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform-dependent
        return None


def run_tasks(tasks: Sequence[Task], *, jobs: int = 1) -> List[Any]:
    """Execute ``tasks`` and return their results in submission order.

    ``jobs=1`` (the default) runs everything in-process; ``jobs>1``
    fans out to a ``fork``-based process pool; ``jobs<=0`` means "all
    cores".  Exceptions raised by a task propagate to the caller (the
    earliest failing task in submission order wins).
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    # Cap at the machine's core count: CPU-bound deployments gain
    # nothing from extra workers, and oversubscription (jobs=4 on one
    # core) measurably *slows the run down* — fork cost plus
    # time-slicing.  Results are identical either way (submission-order
    # determinism), so the cap is pure win.
    cores = os.cpu_count() or 1
    if jobs > cores:
        logger.info(
            "capping jobs=%d to %d (os.cpu_count()): more workers than "
            "cores oversubscribes CPU-bound deployments",
            jobs,
            cores,
        )
        jobs = cores
    if jobs <= 1 or len(tasks) <= 1:
        return [_execute_task(task) for task in tasks]
    context = _fork_context()
    if context is None:  # pragma: no cover - platform-dependent
        return [_execute_task(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        futures = [pool.submit(_execute_task, task) for task in tasks]
        return [future.result() for future in futures]


def run_jobs(job_list: Sequence[Job], *, jobs: int = 1) -> List[JobResult]:
    """Run deployment jobs, returning :class:`JobResult`\\ s in order."""
    tasks = [Task(fn=_execute_job, args=(job,), key=job.key) for job in job_list]
    return run_tasks(tasks, jobs=jobs)
