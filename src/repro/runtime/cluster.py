"""A local live deployment: N protocol nodes over real sockets.

Builds the same component graph as the simulated
:class:`~repro.experiments.cluster.SimCluster` — membership, manager
assignment, behaviours, a stream source — but on the asyncio transport
and in real time.  Chunk creation times are kept in a shared in-process
table so the health metric works identically.

Robustness features (all off by default, switched on per config):

* a :class:`~repro.runtime.faults.FaultSchedule` is executed by a
  real-time driver task — crashes really close the node's sockets,
  restarts rebind them — while drops/partitions/slow links ride the
  transport's send hook;
* when crashes are scripted, a *probe* task keeps sending reliable
  audit requests to the crashed nodes from a healthy peer, which is
  what walks the per-peer circuit breaker through
  open → half-open → closed as the node dies and returns;
* expulsion quorums reached by the reputation managers are enforced on
  the :class:`~repro.runtime.transport.NodeRegistry` and chained into a
  tamper-evident :class:`~repro.core.auditlog.AuditLog`.

Usage (see ``examples/live_cluster.py``)::

    config = RuntimeConfig(n=12, duration=6.0, freerider_fraction=0.25)
    report = asyncio.run(RuntimeCluster(config).run())
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.config import FreeriderDegree, GossipParams, HONEST_DEGREE, LiftingParams
from repro.core.auditlog import AuditLog
from repro.core.reputation import ManagerAssignment, ScoreBoard
from repro.gossip.chunks import SOURCE_ID, Chunk
from repro.gossip.protocol import GossipNode
from repro.loadgen.driver import LoadGenerator, LoadProfile
from repro.membership.failure_detector import (
    ChurnMonitor,
    FailureDetectorParams,
    apply_membership_event,
)
from repro.membership.full import FullMembership
from repro.metrics.scores import DetectionReport, detection_report
from repro.nodes.behavior import HonestBehavior
from repro.nodes.freerider import FreeriderBehavior
from repro.runtime.faults import FaultPlane, FaultSchedule
from repro.runtime.resilience import ResilienceConfig
from repro.runtime.transport import AsyncTransport, NodeRegistry
from repro.util.rng import SeedSequenceFactory
from repro.wire import AuditRequest, Serve

NodeId = int

#: cadence of the breaker-probe task (well under the breaker's reset
#: timeout, so an open circuit is re-probed promptly).
_PROBE_INTERVAL = 0.12


@dataclass(frozen=True)
class RuntimeConfig:
    """Parameters of a live local deployment."""

    n: int = 12
    duration: float = 6.0
    gossip_period: float = 0.25
    fanout: int = 4
    managers: int = 5
    chunk_size: int = 1024
    chunk_interval: float = 0.05
    loss_rate: float = 0.03
    freerider_fraction: float = 0.0
    freerider_degree: FreeriderDegree = HONEST_DEGREE
    seed: int = 0
    #: per-period probability of a sporadic entropy audit (0 = never).
    p_audit: float = 0.0
    #: enforce expulsion quorums on the registry (and audit-log them).
    expulsion_enabled: bool = False
    #: tuning of retry/breaker/ingress (None = defaults).
    resilience: Optional[ResilienceConfig] = None
    #: scripted faults to run against the deployment (None = none).
    fault_schedule: Optional[FaultSchedule] = None
    #: JSONL mirror of the audit log (None = in-memory only).
    audit_log_path: Optional[str] = None
    #: seed of the audit log's HMAC key.
    audit_key_seed: str = "lifting-audit"
    #: SWIM-style failure detection (None = off).  Timeouts are in
    #: gossip-period units, so the sim-calibrated defaults transfer.
    failure_detector: Optional[FailureDetectorParams] = None
    #: open-loop load sweep driven at ``load_target`` during the run
    #: (None = no load generator).  ``duration`` must cover the
    #: profile's schedule for the sweep to complete.
    load_profile: Optional[LoadProfile] = None
    load_target: int = 0


@dataclass
class RuntimeReport:
    """What a live run produced."""

    chunks_emitted: int
    delivery_ratio: float
    scores: Dict[NodeId, float]
    detection: DetectionReport
    datagrams_sent: int
    datagrams_dropped: int
    freerider_ids: Set[NodeId] = field(default_factory=set)
    datagram_errors: int = 0
    sends_refused: int = 0
    #: breaker / ingress-queue / connection counters (see
    #: :meth:`AsyncTransport.resilience_snapshot`).
    resilience: Dict[str, object] = field(default_factory=dict)
    #: fault-plane injection counters (empty without a schedule).
    faults: Dict[str, int] = field(default_factory=dict)
    expelled: List[NodeId] = field(default_factory=list)
    #: expelled nodes that were not freeriders (wrongful blame).
    wrongful_expulsions: List[NodeId] = field(default_factory=list)
    #: outcome of verifying the audit chain after the run.
    audit_ok: Optional[bool] = None
    audit_records: int = 0
    #: churn/detector transition counters and convergence delays
    #: (empty without a failure detector).
    membership: Dict[str, object] = field(default_factory=dict)
    #: safety-invariant sweep outcome (see
    #: :class:`repro.core.invariants.InvariantMonitor.summary`).
    invariants: Dict[str, object] = field(default_factory=dict)
    #: load-generator sweep report (empty without a ``load_profile``);
    #: see :meth:`repro.loadgen.driver.LoadGenerator.report`.
    load: Dict[str, object] = field(default_factory=dict)


class RuntimeCluster:
    """Drives a full live run and reports the outcome."""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config
        self.gossip = GossipParams(
            n=config.n,
            fanout=min(config.fanout, config.n - 1),
            gossip_period=config.gossip_period,
            stream_rate_kbps=config.chunk_size * 8 / 1000 / config.chunk_interval,
            chunk_size=config.chunk_size,
            source_fanout=min(config.fanout, config.n - 1),
            request_size=4,
        )
        self.lifting = LiftingParams(
            p_dcc=1.0,
            managers=min(config.managers, config.n - 1),
            history_periods=50,
            assumed_loss_rate=config.loss_rate,
            ack_timeout=2.5 * config.gossip_period,
            serve_timeout=1.5 * config.gossip_period,
            confirm_timeout=1.5 * config.gossip_period,
        )
        self.chunk_created_at: Dict[int, float] = {}
        self.nodes: Dict[NodeId, GossipNode] = {}
        self.freerider_ids: Set[NodeId] = set()
        self.audit_log: Optional[AuditLog] = None
        self.expelled: List[NodeId] = []
        self._monitor: Optional[ChurnMonitor] = None
        self._membership = None
        self._expelled_set: Set[NodeId] = set()
        #: armed by :meth:`run`; exposes live invariant state to tests.
        self.invariants = None
        #: armed by :meth:`run` when a load profile is configured.
        self.loadgen: Optional[LoadGenerator] = None

    async def run(self) -> RuntimeReport:
        """Execute the deployment for ``config.duration`` real seconds."""
        config = self.config
        loop = asyncio.get_running_loop()
        seeds = SeedSequenceFactory(config.seed)
        registry = NodeRegistry()

        plane: Optional[FaultPlane] = None
        if config.fault_schedule is not None:
            plane = FaultPlane(config.fault_schedule, rng=seeds.generator("faults"))
        transport = AsyncTransport(
            loop,
            registry,
            loss_rate=config.loss_rate,
            rng=seeds.generator("loss"),
            resilience=config.resilience,
            fault_plane=plane,
        )
        log = AuditLog(
            key_seed=config.audit_key_seed,
            path=config.audit_log_path,
            clock=transport.clock,
        )
        self.audit_log = log
        log.append("run_start", n=config.n, seed=config.seed)

        node_ids = list(range(config.n))
        role_rng = seeds.generator("roles")
        shuffled = list(node_ids)
        role_rng.shuffle(shuffled)
        n_freeriders = int(round(config.freerider_fraction * config.n))
        self.freerider_ids = set(shuffled[:n_freeriders])

        membership = FullMembership(seeds.generator("membership"), node_ids)
        assignment = ManagerAssignment(node_ids, self.lifting.managers, seeds.seed("mgr"))

        monitor: Optional[ChurnMonitor] = None
        if config.failure_detector is not None:
            monitor = ChurnMonitor(clock=transport.clock)
        self._monitor = monitor
        self._membership = membership
        self._expelled_set: Set[NodeId] = set()
        expelled_set = self._expelled_set

        def on_expel_quorum(manager_id: NodeId, target: NodeId, reason: str) -> None:
            log.append(
                "expulsion", target=int(target), by=int(manager_id), reason=reason
            )
            if not config.expulsion_enabled or target in expelled_set:
                return
            expelled_set.add(target)
            self.expelled.append(target)
            registry.expel(target)
            membership.mark_expelled(target)

        def on_membership_event(
            reporter: NodeId, node: NodeId, status: str, incarnation: int
        ) -> None:
            # In-process callback: shun verdicts from expelled nodes —
            # on the wire nobody would hear them.
            if reporter in expelled_set:
                return
            apply_membership_event(
                membership, monitor, reporter, node, status, incarnation, audit_log=log
            )

        for node_id in node_ids:
            behavior = (
                FreeriderBehavior(config.freerider_degree)
                if node_id in self.freerider_ids
                else HonestBehavior()
            )
            node = GossipNode(
                node_id=node_id,
                transport=transport,
                sampler=membership,
                gossip=self.gossip,
                lifting=self.lifting,
                behavior=behavior,
                assignment=assignment,
                rng=seeds.generator("node", node_id),
                chunk_created_at=self._created_at,
                on_expel_quorum=on_expel_quorum,
                p_audit=config.p_audit,
                detector=config.failure_detector,
                on_membership_event=(
                    on_membership_event if config.failure_detector is not None else None
                ),
            )
            if node.manager is not None:
                node.manager.audit_log = log
            self.nodes[node_id] = node
            await transport.open_endpoints(node_id, node.on_message)

        # Safety-invariant sweeps ride their own task: read-only over
        # the managers/registry, so they observe the run without
        # perturbing it.
        from repro.core.invariants import InvariantMonitor

        invariants = InvariantMonitor(
            managers={
                nid: n.manager
                for nid, n in self.nodes.items()
                if n.manager is not None
            },
            honest_ids=set(node_ids) - self.freerider_ids,
            adversary_ids=self.freerider_ids,
            is_expelled=expelled_set.__contains__,
            node_ids=node_ids,
            assignment=assignment,
            expel_quorum=self.lifting.expel_quorum,
            audit_logs=(log,),
            clock=transport.clock,
        )
        self.invariants = invariants
        invariant_task = loop.create_task(self._invariant_sweeps(invariants))

        # The source: a plain coroutine pushing fresh chunks over UDP.
        source_task = loop.create_task(self._source(transport, membership, seeds))

        fault_task = probe_task = None
        if plane is not None:
            fault_task = loop.create_task(
                self._fault_driver(transport, plane, log)
            )
            crash_targets = sorted(
                {
                    nid
                    for ev in config.fault_schedule.lifecycle_events()
                    if ev.kind == "crash"
                    for nid in ev.nodes
                }
            )
            if crash_targets:
                probe_task = loop.create_task(
                    self._probe_crashed(transport, crash_targets)
                )

        load_task = None
        if config.load_profile is not None:
            self.loadgen = LoadGenerator(
                transport, config.load_profile, config.load_target
            )
            await self.loadgen.start()
            load_task = loop.create_task(self.loadgen.run())

        for node in self.nodes.values():
            node.start()

        await asyncio.sleep(config.duration)

        source_task.cancel()
        for task in (fault_task, probe_task, invariant_task, load_task):
            if task is not None:
                task.cancel()
        if self.loadgen is not None:
            self.loadgen.detach()
        for node in self.nodes.values():
            node.stop()
        await asyncio.sleep(2 * config.gossip_period)  # drain in-flight timers
        await transport.close()

        invariants.check()  # final-state sweep on the settled run
        return self._report(transport, assignment, plane, log, invariants)

    # ------------------------------------------------------------------
    # background tasks
    # ------------------------------------------------------------------
    async def _source(self, transport: AsyncTransport, membership, seeds) -> None:
        # The source owns a real endpoint like any node; it just follows a
        # push schedule instead of the three-phase protocol.
        await transport.open_endpoints(SOURCE_ID, lambda _src, _msg: None)
        next_id = 0
        while True:
            self.chunk_created_at[next_id] = transport.clock()
            targets = membership.sample(SOURCE_ID, self.gossip.source_fanout)
            serve = Serve(
                proposal_id=-1,
                chunk_id=next_id,
                payload_size=self.config.chunk_size,
                origin=SOURCE_ID,
            )
            for target in targets:
                transport.send(SOURCE_ID, target, serve, reliable=False)
            next_id += 1
            await asyncio.sleep(self.config.chunk_interval)

    async def _fault_driver(
        self, transport: AsyncTransport, plane: FaultPlane, log: AuditLog
    ) -> None:
        """Apply the schedule's crash/restart instants in real time."""
        for event in self.config.fault_schedule.lifecycle_events():
            delay = event.at - transport.clock()
            if delay > 0:
                await asyncio.sleep(delay)
            for node_id in event.nodes:
                node = self.nodes.get(node_id)
                if node is None:
                    continue
                if event.kind == "crash":
                    node.stop()
                    transport.crash_node(node_id)
                    plane.mark_crashed(node_id)
                    if self._monitor is not None:
                        self._monitor.on_crashed(node_id)
                    log.append("fault", event="crash", node=int(node_id))
                else:
                    if node_id in self._expelled_set:
                        # Expulsion outlives the crash: the quorum's
                        # verdict bars the node from rebinding.
                        if self._monitor is not None:
                            self._monitor.on_rejoin_refused(node_id)
                        log.append(
                            "fault", event="restart_refused", node=int(node_id)
                        )
                        continue
                    await transport.restart_node(node_id)
                    plane.mark_restarted(node_id)
                    if self.config.failure_detector is not None:
                        if not self._membership.contains(node_id):
                            self._membership.readmit(
                                node_id, node.failure_detector.incarnation + 1
                            )
                        node.reset_gossip_state()
                    node.start()
                    if self._monitor is not None:
                        self._monitor.on_restarted(node_id)
                    log.append("fault", event="restart", node=int(node_id))

    async def _probe_crashed(
        self, transport: AsyncTransport, targets: List[NodeId]
    ) -> None:
        """Keep poking scripted-crash targets over the reliable path.

        The prober is a node that never crashes; its audit requests are
        harmless protocol traffic, but their fate — refused connects
        while the target is down, a successful write after the restart —
        is exactly the failure/success series that drives the target's
        circuit breaker through open, half-open and back to closed.
        """
        prober = next(
            (nid for nid in sorted(self.nodes) if nid not in targets), None
        )
        if prober is None:  # degenerate schedule: every node crashes
            return
        probe = AuditRequest(periods=1)
        while True:
            for target in targets:
                transport.send(prober, target, probe, reliable=True)
            await asyncio.sleep(_PROBE_INTERVAL)

    async def _invariant_sweeps(self, monitor) -> None:
        """Periodic safety sweeps, a couple per gossip period window."""
        interval = 2 * self.config.gossip_period
        while True:
            await asyncio.sleep(interval)
            monitor.check()

    def _created_at(self, chunk_id: int) -> float:
        return self.chunk_created_at.get(chunk_id, 0.0)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _report(self, transport, assignment, plane, log, invariants) -> RuntimeReport:
        emitted = len(self.chunk_created_at)
        if emitted and self.nodes:
            ratios = [
                sum(1 for c in range(emitted) if c in node.store) / emitted
                for node in self.nodes.values()
            ]
            delivery = sum(ratios) / len(ratios)
        else:
            delivery = 0.0
        scoreboard = ScoreBoard(
            {nid: node.manager for nid, node in self.nodes.items() if node.manager}
        )
        scores = scoreboard.scores(list(self.nodes.keys()), assignment)
        log.snapshot(
            {
                "chunks_emitted": emitted,
                "delivery_ratio": round(delivery, 6),
                "expelled": [int(n) for n in self.expelled],
            }
        )
        membership_stats: Dict[str, object] = {}
        if self._monitor is not None:
            membership_stats = self._monitor.summary()
            quarantines = {"started": 0, "discarded": 0, "released": 0}
            pending_records = pending_events = 0
            probes = indirect = local_susp = local_refut = 0
            for node in self.nodes.values():
                manager = node.manager
                if manager is not None:
                    quarantines["started"] += manager.quarantines_started
                    quarantines["discarded"] += manager.quarantines_discarded
                    quarantines["released"] += manager.quarantines_released
                    for record in manager.records.values():
                        if record.suspected:
                            pending_records += 1
                        pending_events += record.quarantined_events
                detector = node.failure_detector
                if detector is not None:
                    probes += detector.probes_sent
                    indirect += detector.indirect_probes
                    local_susp += detector.suspicions_raised
                    local_refut += detector.refutations_sent
            membership_stats.update(
                quarantines_started=quarantines["started"],
                quarantines_discarded=quarantines["discarded"],
                quarantines_released=quarantines["released"],
                records_in_quarantine=pending_records,
                quarantined_events_pending=pending_events,
                suspected_now=len(self._membership.suspected_nodes()),
                probes_sent=probes,
                indirect_probes=indirect,
                local_suspicions=local_susp,
                local_refutations=local_refut,
            )
        chain = log.verify_all()
        log.close()
        resilience = transport.resilience_snapshot()
        load_report: Dict[str, object] = {}
        if self.loadgen is not None:
            load_report = self.loadgen.report(resilience)
        return RuntimeReport(
            chunks_emitted=emitted,
            delivery_ratio=delivery,
            scores=scores,
            detection=detection_report(scores, self.freerider_ids, self.lifting.eta),
            datagrams_sent=transport.datagrams_sent,
            datagrams_dropped=transport.datagrams_dropped,
            freerider_ids=set(self.freerider_ids),
            datagram_errors=transport.datagram_errors,
            sends_refused=transport.sends_refused,
            resilience=resilience,
            faults=plane.counters() if plane is not None else {},
            expelled=list(self.expelled),
            wrongful_expulsions=[
                n for n in self.expelled if n not in self.freerider_ids
            ],
            audit_ok=chain.ok,
            audit_records=chain.length,
            membership=membership_stats,
            invariants=invariants.summary(),
            load=load_report,
        )
