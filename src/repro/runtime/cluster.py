"""A local live deployment: N protocol nodes over real sockets.

Builds the same component graph as the simulated
:class:`~repro.experiments.cluster.SimCluster` — membership, manager
assignment, behaviours, a stream source — but on the asyncio transport
and in real time.  Chunk creation times are kept in a shared in-process
table so the health metric works identically.

Usage (see ``examples/live_cluster.py``)::

    config = RuntimeConfig(n=12, duration=6.0, freerider_fraction=0.25)
    report = asyncio.run(RuntimeCluster(config).run())
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.config import FreeriderDegree, GossipParams, HONEST_DEGREE, LiftingParams
from repro.core.reputation import ManagerAssignment, ScoreBoard
from repro.gossip.chunks import SOURCE_ID, Chunk
from repro.gossip.protocol import GossipNode
from repro.membership.full import FullMembership
from repro.metrics.scores import DetectionReport, detection_report
from repro.nodes.behavior import HonestBehavior
from repro.nodes.freerider import FreeriderBehavior
from repro.runtime.transport import AsyncTransport, NodeRegistry
from repro.util.rng import SeedSequenceFactory
from repro.wire import Serve

NodeId = int


@dataclass(frozen=True)
class RuntimeConfig:
    """Parameters of a live local deployment."""

    n: int = 12
    duration: float = 6.0
    gossip_period: float = 0.25
    fanout: int = 4
    managers: int = 5
    chunk_size: int = 1024
    chunk_interval: float = 0.05
    loss_rate: float = 0.03
    freerider_fraction: float = 0.0
    freerider_degree: FreeriderDegree = HONEST_DEGREE
    seed: int = 0


@dataclass
class RuntimeReport:
    """What a live run produced."""

    chunks_emitted: int
    delivery_ratio: float
    scores: Dict[NodeId, float]
    detection: DetectionReport
    datagrams_sent: int
    datagrams_dropped: int
    freerider_ids: Set[NodeId] = field(default_factory=set)


class RuntimeCluster:
    """Drives a full live run and reports the outcome."""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config
        self.gossip = GossipParams(
            n=config.n,
            fanout=min(config.fanout, config.n - 1),
            gossip_period=config.gossip_period,
            stream_rate_kbps=config.chunk_size * 8 / 1000 / config.chunk_interval,
            chunk_size=config.chunk_size,
            source_fanout=min(config.fanout, config.n - 1),
            request_size=4,
        )
        self.lifting = LiftingParams(
            p_dcc=1.0,
            managers=min(config.managers, config.n - 1),
            history_periods=50,
            assumed_loss_rate=config.loss_rate,
            ack_timeout=2.5 * config.gossip_period,
            serve_timeout=1.5 * config.gossip_period,
            confirm_timeout=1.5 * config.gossip_period,
        )
        self.chunk_created_at: Dict[int, float] = {}
        self.nodes: Dict[NodeId, GossipNode] = {}
        self.freerider_ids: Set[NodeId] = set()

    async def run(self) -> RuntimeReport:
        """Execute the deployment for ``config.duration`` real seconds."""
        config = self.config
        loop = asyncio.get_running_loop()
        seeds = SeedSequenceFactory(config.seed)
        registry = NodeRegistry()
        transport = AsyncTransport(
            loop, registry, loss_rate=config.loss_rate, rng=seeds.generator("loss")
        )

        node_ids = list(range(config.n))
        role_rng = seeds.generator("roles")
        shuffled = list(node_ids)
        role_rng.shuffle(shuffled)
        n_freeriders = int(round(config.freerider_fraction * config.n))
        self.freerider_ids = set(shuffled[:n_freeriders])

        membership = FullMembership(seeds.generator("membership"), node_ids)
        assignment = ManagerAssignment(node_ids, self.lifting.managers, seeds.seed("mgr"))

        for node_id in node_ids:
            behavior = (
                FreeriderBehavior(config.freerider_degree)
                if node_id in self.freerider_ids
                else HonestBehavior()
            )
            node = GossipNode(
                node_id=node_id,
                transport=transport,
                sampler=membership,
                gossip=self.gossip,
                lifting=self.lifting,
                behavior=behavior,
                assignment=assignment,
                rng=seeds.generator("node", node_id),
                chunk_created_at=self._created_at,
            )
            self.nodes[node_id] = node
            await transport.open_endpoints(node_id, node.on_message)

        # The source: a plain coroutine pushing fresh chunks over UDP.
        source_task = loop.create_task(
            self._source(transport, membership, seeds)
        )

        for node in self.nodes.values():
            node.start()

        await asyncio.sleep(config.duration)

        source_task.cancel()
        for node in self.nodes.values():
            node.stop()
        await asyncio.sleep(2 * config.gossip_period)  # drain in-flight timers
        await transport.close()

        return self._report(transport, assignment)

    async def _source(self, transport: AsyncTransport, membership, seeds) -> None:
        # The source owns a real endpoint like any node; it just follows a
        # push schedule instead of the three-phase protocol.
        await transport.open_endpoints(SOURCE_ID, lambda _src, _msg: None)
        next_id = 0
        while True:
            self.chunk_created_at[next_id] = transport.clock()
            targets = membership.sample(SOURCE_ID, self.gossip.source_fanout)
            serve = Serve(
                proposal_id=-1,
                chunk_id=next_id,
                payload_size=self.config.chunk_size,
                origin=SOURCE_ID,
            )
            for target in targets:
                transport.send(SOURCE_ID, target, serve, reliable=False)
            next_id += 1
            await asyncio.sleep(self.config.chunk_interval)

    def _created_at(self, chunk_id: int) -> float:
        return self.chunk_created_at.get(chunk_id, 0.0)

    def _report(self, transport, assignment) -> RuntimeReport:
        emitted = len(self.chunk_created_at)
        if emitted and self.nodes:
            ratios = [
                sum(1 for c in range(emitted) if c in node.store) / emitted
                for node in self.nodes.values()
            ]
            delivery = sum(ratios) / len(ratios)
        else:
            delivery = 0.0
        scoreboard = ScoreBoard(
            {nid: node.manager for nid, node in self.nodes.items() if node.manager}
        )
        scores = scoreboard.scores(list(self.nodes.keys()), assignment)
        return RuntimeReport(
            chunks_emitted=emitted,
            delivery_ratio=delivery,
            scores=scores,
            detection=detection_report(scores, self.freerider_ids, self.lifting.eta),
            datagrams_sent=transport.datagrams_sent,
            datagrams_dropped=transport.datagrams_dropped,
            freerider_ids=set(self.freerider_ids),
        )
