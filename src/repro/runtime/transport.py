"""Socket transport for the asyncio runtime.

Each node owns one UDP datagram endpoint (unreliable path) and one TCP
server (reliable path, used by audits).  Messages are serialised with
the strict schema codec of :mod:`repro.wire_codec` — per-field typed
packing derived from the frozen wire dataclasses, framed by a 4-byte
length prefix on TCP and sent as one frame per datagram on UDP.  No
byte a peer sends is ever trusted: unknown tags, truncated or trailing
bytes, out-of-range counts and oversized frames are all rejected at the
socket boundary, counted per claimed source in
:meth:`AsyncTransport.resilience_snapshot`, and repeated garbage from
one peer trips that peer's circuit breaker (we stop talking to a
babbling endpoint).  A TCP length prefix above the codec's frame cap
kills the connection outright — framing can no longer be trusted after
it.

Resilience layer (see :mod:`repro.runtime.resilience`):

* **Egress** — reliable sends go through one persistent
  :class:`_PeerChannel` per destination: frames queue in a bounded
  deque and a writer task coalesces them into single TCP writes over a
  connection that is opened once and kept.  Connection establishment
  retries with exponential backoff + jitter; a per-peer circuit breaker
  (closed/open/half-open) fast-fails sends to a dead peer instead of
  burning sockets and backoff sleeps on every attempt.
* **Ingress** — decoded messages from both sockets land in one
  :class:`~repro.runtime.resilience.BoundedIngressQueue`; a pump task
  drains them in bounded batches into each node's
  ``on_message_batch`` fast path (the same coalesced entry point the
  simulator's calendar-queue drain uses), yielding to the event loop
  between batches so a burst cannot starve timers.

Scripted faults (:class:`~repro.runtime.faults.FaultPlane`) hook the
send path — drops and slow links — while node crash/restart is a
transport operation (:meth:`AsyncTransport.crash_node` really closes
the sockets, so peers observe ECONNREFUSED/ICMP like they would in
production, which is what exercises the breaker and the
``datagram_errors`` counter).

The :class:`NodeRegistry` is the bootstrap directory mapping node ids to
socket addresses; it also implements expulsion (an expelled node's
address is removed, so peers can no longer reach it and its own sends
are refused).
"""

from __future__ import annotations

import asyncio
import struct
from collections import deque
from typing import Callable, Deque, Dict, Optional, Set, Tuple

import numpy as np

from repro import wire_codec
from repro.runtime.resilience import (
    BoundedIngressQueue,
    BreakerCounters,
    CircuitBreaker,
    RESILIENCE_SNAPSHOT_SCHEMA,
    ResilienceConfig,
)
from repro.util.validation import require

NodeId = int
Address = Tuple[str, int]

_LENGTH = struct.Struct("!I")


class NodeRegistry:
    """Directory of node addresses with expulsion support."""

    def __init__(self) -> None:
        self._udp: Dict[NodeId, Address] = {}
        self._tcp: Dict[NodeId, Address] = {}
        self._expelled: set = set()

    def register(self, node_id: NodeId, udp: Address, tcp: Address) -> None:
        """Publish a node's endpoints."""
        self._udp[node_id] = udp
        self._tcp[node_id] = tcp

    def expel(self, node_id: NodeId) -> None:
        """Remove a node from the fabric."""
        self._expelled.add(node_id)

    def is_connected(self, node_id: NodeId) -> bool:
        """Whether a node is registered and not expelled."""
        return node_id in self._udp and node_id not in self._expelled

    def udp_address(self, node_id: NodeId) -> Optional[Address]:
        """UDP endpoint of ``node_id`` (None when unreachable)."""
        if node_id in self._expelled:
            return None
        return self._udp.get(node_id)

    def tcp_address(self, node_id: NodeId) -> Optional[Address]:
        """TCP endpoint of ``node_id`` (None when unreachable)."""
        if node_id in self._expelled:
            return None
        return self._tcp.get(node_id)


class _DatagramProtocol(asyncio.DatagramProtocol):
    def __init__(
        self,
        on_datagram: Callable[[bytes], None],
        on_error: Callable[[Exception], None],
    ) -> None:
        self._on_datagram = on_datagram
        self._on_error = on_error

    def datagram_received(self, data: bytes, addr) -> None:  # noqa: D102
        self._on_datagram(data)

    def error_received(self, exc) -> None:  # noqa: D102
        # ICMP errors (port unreachable after a peer crash) are the
        # only cheap liveness signal UDP has — count them.
        self._on_error(exc)


class _PeerChannel:
    """Persistent framed TCP egress to one destination node.

    Frames queue in a bounded deque; a single writer task opens the
    connection (retrying with the transport's backoff policy), coalesces
    queued frames into one write, and reports outcomes to the per-peer
    circuit breaker.  The channel is shared by every local node sending
    to ``dst`` — the frame payload carries the source id.
    """

    def __init__(self, transport: "AsyncTransport", dst: NodeId) -> None:
        self.transport = transport
        self.dst = dst
        res = transport.resilience
        self.queue: Deque[bytes] = deque()
        self.queue_limit = res.egress_queue_limit
        self.coalesce = res.coalesce_frames
        self.breaker = CircuitBreaker(
            transport.clock,
            failure_threshold=res.breaker_failure_threshold,
            reset_timeout=res.breaker_reset_timeout,
        )
        self.event = asyncio.Event()
        self.writer: Optional[asyncio.StreamWriter] = None
        self.task: Optional[asyncio.Task] = None

    def submit(self, frame: bytes) -> bool:
        """Queue one length-prefixed frame; False when refused."""
        if not self.breaker.allow():
            return False
        if len(self.queue) >= self.queue_limit:
            return False
        self.queue.append(frame)
        self.event.set()
        if self.task is None or self.task.done():
            self.task = self.transport.loop.create_task(self._run())
        return True

    async def _run(self) -> None:
        transport = self.transport
        while not transport._closing:
            if not self.queue:
                self.event.clear()
                await self.event.wait()
                continue
            if not await self._ensure_connection():
                self.breaker.record_failure()
                transport.frames_abandoned += len(self.queue)
                self.queue.clear()
                continue
            chunks = []
            while self.queue and len(chunks) < self.coalesce:
                chunks.append(self.queue.popleft())
            try:
                self.writer.write(b"".join(chunks))
                await self.writer.drain()
            except (ConnectionError, OSError):
                self.drop_connection()
                self.breaker.record_failure()
                transport.frames_abandoned += len(chunks)
                continue
            self.breaker.record_success()

    async def _ensure_connection(self) -> bool:
        if self.writer is not None and not self.writer.is_closing():
            return True
        transport = self.transport
        address = transport.registry.tcp_address(self.dst)
        if address is None:
            return False
        policy = transport.resilience.retry
        for attempt in range(policy.max_attempts):
            if self.dst in transport._crashed:
                # The peer's server is down; fail fast so the breaker
                # opens instead of sleeping through doomed connects.
                transport.connect_failures += 1
                return False
            try:
                _reader, writer = await asyncio.open_connection(*address)
            except (ConnectionError, OSError):
                transport.connect_failures += 1
                if attempt + 1 < policy.max_attempts:
                    await asyncio.sleep(policy.delay(attempt, transport.rng))
                continue
            self.writer = writer
            return True
        return False

    def drop_connection(self) -> None:
        """Discard the cached stream (next write reconnects)."""
        if self.writer is not None:
            self.writer.close()
            self.writer = None

    def close(self) -> None:
        self.event.set()
        if self.task is not None:
            self.task.cancel()
        self.drop_connection()


class AsyncTransport:
    """The transport facade over asyncio sockets.

    Satisfies the same interface as
    :class:`repro.gossip.protocol.SimTransport`: ``clock``,
    ``call_later``, ``call_every``, ``send`` — so a
    :class:`~repro.gossip.protocol.GossipNode` runs on it unmodified.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        registry: NodeRegistry,
        *,
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        epoch: Optional[float] = None,
        resilience: Optional[ResilienceConfig] = None,
        fault_plane=None,
    ) -> None:
        require(0.0 <= loss_rate < 1.0, "loss_rate must be in [0, 1)")
        self.loop = loop
        self.registry = registry
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.epoch = loop.time() if epoch is None else epoch
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.fault_plane = fault_plane
        self._endpoints: Dict[NodeId, asyncio.DatagramTransport] = {}
        #: node -> (receiver callable, dispatch table or None, batch entry point or None)
        self._receivers: Dict[NodeId, Tuple[Callable, Optional[dict], Optional[Callable]]] = {}
        self._servers: Dict[NodeId, asyncio.AbstractServer] = {}
        self._server_conns: Dict[NodeId, Set[asyncio.StreamWriter]] = {}
        self._serve_tasks: Set[asyncio.Task] = set()
        self._channels: Dict[NodeId, _PeerChannel] = {}
        self._crashed: Set[NodeId] = set()
        self._closing = False
        #: optional stage-timestamp observer (see
        #: :class:`repro.loadgen.probe.StageProbe`).  Every hot-path hook
        #: is guarded by one ``is not None`` check, so the disabled cost
        #: is a single attribute load per ingest / per drained batch.
        self.probe = None
        # ingress: one bounded queue feeding one pump task
        self._ingress = BoundedIngressQueue(
            capacity=self.resilience.ingress_capacity,
            policy=self.resilience.ingress_policy,
            on_evict=self._on_ingress_evict,
        )
        self._ingress_event = asyncio.Event()
        self._pump_task: Optional[asyncio.Task] = None
        self._seq = 0
        # counters
        self.datagrams_sent = 0
        self.datagrams_dropped = 0
        self.datagram_errors = 0
        self.sends_refused = 0
        self.frames_abandoned = 0
        self.connect_failures = 0
        #: rejected ingress frames, total and per claimed source.  The
        #: attribution comes from the (unauthenticated) frame header,
        #: so it quarantines a babbling peer without convicting it.
        self.decode_errors = 0
        self.decode_errors_unattributed = 0
        self.decode_errors_by_peer: Dict[NodeId, int] = {}

    # ------------------------------------------------------------------
    # the facade used by GossipNode
    # ------------------------------------------------------------------
    def clock(self) -> float:
        """Seconds since the cluster epoch."""
        return self.loop.time() - self.epoch

    def call_later(self, delay: float, callback: Callable[..., None], *args):
        """Schedule on the event loop; returns the asyncio handle."""
        return self.loop.call_later(delay, callback, *args)

    def call_every(self, interval: float, callback, *, first_delay: float, jitter=None):
        """Periodic scheduling with the same semantics as the simulator."""
        return _PeriodicHandle(self.loop, interval, callback, first_delay, jitter)

    def send(self, src: NodeId, dst: NodeId, message: object, reliable: bool) -> bool:
        """Ship one message.

        Return contract: ``True`` means the transport *accepted* the
        message — it was handed to a socket, queued on a peer channel,
        or deliberately discarded by synthetic loss / fault injection
        (the network ate it; the sender did its part).  ``False`` means
        the send was **refused** before any transmission was attempted —
        unknown or expelled endpoint (including the sender itself),
        crashed source or destination, missing socket, an open circuit
        breaker, or a full egress queue — and ``sends_refused`` is
        incremented exactly once per refusal.
        """
        if not self.registry.is_connected(src) or not self.registry.is_connected(dst):
            self.sends_refused += 1
            return False
        if src in self._crashed:
            # A crashed source has no sockets.  Sends *to* a crashed
            # destination deliberately proceed: datagrams vanish like
            # they would on a real network, and reliable frames hit the
            # peer channel whose failing connects open the breaker.
            self.sends_refused += 1
            return False
        extra = 0.0
        if self.fault_plane is not None:
            fate = self.fault_plane.on_send(self.clock(), src, dst, message)
            if fate < 0.0:
                return True  # injected drop: counted by the plane
            extra = fate
        payload = wire_codec.encode_frame(src, message)
        if not reliable:
            endpoint = self._endpoints.get(src)
            address = self.registry.udp_address(dst)
            if endpoint is None or address is None:
                self.sends_refused += 1
                return False
            self.datagrams_sent += 1
            if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
                self.datagrams_dropped += 1
                return True
            if extra > 0.0:
                self.loop.call_later(extra, self._sendto_late, src, payload, address)
            else:
                endpoint.sendto(payload, address)
            return True
        channel = self._channels.get(dst)
        if channel is None:
            channel = _PeerChannel(self, dst)
            self._channels[dst] = channel
        frame = _LENGTH.pack(len(payload)) + payload
        if extra > 0.0:
            self.loop.call_later(extra, channel.submit, frame)
            return True
        if not channel.submit(frame):
            self.sends_refused += 1
            return False
        return True

    def _sendto_late(self, src: NodeId, payload: bytes, address: Address) -> None:
        """Transmit a fault-delayed datagram (unless the node crashed)."""
        endpoint = self._endpoints.get(src)
        if endpoint is not None:
            endpoint.sendto(payload, address)

    # ------------------------------------------------------------------
    # endpoint lifecycle
    # ------------------------------------------------------------------
    async def open_endpoints(
        self, node_id: NodeId, receiver: Callable[[NodeId, object], None]
    ) -> None:
        """Bind the node's UDP socket and TCP server on loopback.

        When ``receiver`` is a bound method of an endpoint that
        publishes a ``dispatch_table`` (``GossipNode.on_message`` does),
        incoming messages jump straight to the type-keyed handler; when
        the owner also exposes ``on_message_batch``, the ingress pump
        delivers whole same-destination runs through it — the same
        coalesced fast path the simulated network uses.
        """
        owner = getattr(receiver, "__self__", None)
        table = getattr(owner, "dispatch_table", None)
        batch = getattr(owner, "on_message_batch", None)
        self._receivers[node_id] = (receiver, table, batch)
        await self._bind(node_id, ("127.0.0.1", 0), ("127.0.0.1", 0))
        if self._pump_task is None:
            self._pump_task = self.loop.create_task(self._pump())

    async def _bind(self, node_id: NodeId, udp_addr: Address, tcp_addr: Address) -> None:
        """Open both sockets (``port 0`` = ephemeral) and register them."""
        transport, _protocol = await self.loop.create_datagram_endpoint(
            lambda: _DatagramProtocol(
                lambda data: self._dispatch(node_id, data),
                lambda exc: self._on_datagram_error(node_id, exc),
            ),
            local_addr=udp_addr,
        )
        self._endpoints[node_id] = transport
        bound_udp = transport.get_extra_info("sockname")

        server = await asyncio.start_server(
            lambda r, w: self._serve_stream(node_id, r, w), tcp_addr[0], tcp_addr[1]
        )
        self._servers[node_id] = server
        bound_tcp = server.sockets[0].getsockname()
        self.registry.register(node_id, bound_udp, bound_tcp)

    def crash_node(self, node_id: NodeId) -> None:
        """Really tear the node's sockets down (fault injection).

        Peers sending datagrams get ICMP port-unreachable back
        (``datagram_errors`` on their shared endpoint protocol); TCP
        connects fail with ECONNREFUSED, which is what opens the circuit
        breaker.  The registry entry is kept so :meth:`restart_node` can
        rebind on the same ports.
        """
        self._crashed.add(node_id)
        endpoint = self._endpoints.pop(node_id, None)
        if endpoint is not None:
            endpoint.close()
        server = self._servers.pop(node_id, None)
        if server is not None:
            server.close()
        for writer in self._server_conns.pop(node_id, set()):
            writer.close()
        channel = self._channels.get(node_id)
        if channel is not None:
            channel.drop_connection()

    async def restart_node(self, node_id: NodeId) -> None:
        """Rebind a crashed node's sockets (same ports when possible)."""
        udp_addr = self.registry.udp_address(node_id)
        tcp_addr = self.registry.tcp_address(node_id)
        if udp_addr is None or tcp_addr is None:
            return  # expelled while down: stays down
        try:
            await self._bind(node_id, udp_addr, tcp_addr)
        except OSError:
            # Ports were taken while the node was down; take fresh ones
            # and re-register (peers look addresses up per send).
            await self._bind(node_id, ("127.0.0.1", 0), ("127.0.0.1", 0))
        self._crashed.discard(node_id)

    # ------------------------------------------------------------------
    # ingress: sockets -> bounded queue -> pump -> nodes
    # ------------------------------------------------------------------
    def _on_datagram_error(self, node_id: NodeId, exc: Exception) -> None:
        self.datagram_errors += 1

    def _on_ingress_evict(self, item) -> None:
        """Drop-oldest evicted ``item``; forward it to the probe."""
        probe = self.probe
        if probe is not None:
            probe.on_evicted(item)

    def _ingest(self, dst: NodeId, src: NodeId, message: object) -> None:
        """Queue one decoded message for delivery by the pump."""
        now = self.clock()
        accepted = self._ingress.push((now, dst, src, message))
        probe = self.probe
        if probe is not None:
            probe.on_ingest(src, message, now, accepted)
        self._ingress_event.set()

    async def _pump(self) -> None:
        """Drain the ingress queue in bounded batches (load leveling).

        Each iteration delivers at most ``ingress_batch`` messages and
        then yields to the event loop, so a socket burst is levelled
        instead of monopolising the loop; when the queue is empty the
        pump parks on an event (no polling).
        """
        batch_size = self.resilience.ingress_batch
        while not self._closing:
            if len(self._ingress) == 0:
                self._ingress_event.clear()
                await self._ingress_event.wait()
                continue
            self._deliver_batch(self._ingress.drain(batch_size))
            await asyncio.sleep(0)

    def _deliver_batch(self, batch) -> None:
        """Deliver drained entries, coalescing same-destination runs."""
        i, n = 0, len(batch)
        registry = self.registry
        probe = self.probe
        while i < n:
            dst = batch[i][1]
            j = i + 1
            while j < n and batch[j][1] == dst:
                j += 1
            if not registry.is_connected(dst) or dst in self._crashed:
                i = j
                continue
            entry = self._receivers.get(dst)
            if entry is None:
                i = j
                continue
            receiver, table, batch_fn = entry
            t_drain = self.clock() if probe is not None else 0.0
            if batch_fn is not None:
                entries = []
                for k in range(i, j):
                    t, _dst, src, message = batch[k]
                    entries.append([t, self._seq, src, dst, message])
                    self._seq += 1
                batch_fn(entries, 0, len(entries))
            else:
                for k in range(i, j):
                    _t, _dst, src, message = batch[k]
                    self._deliver_local(receiver, table, src, message)
            if probe is not None:
                probe.on_dispatched(batch, i, j, t_drain, self.clock())
            i = j

    @staticmethod
    def _deliver_local(receiver, table, src: NodeId, message: object) -> None:
        """Per-message fallback for receivers without a batch entry."""
        if table is not None:
            handler = table.get(message.__class__)
            if handler is not None:
                handler(src, message)
            return
        receiver(src, message)

    def _on_decode_error(self, data: bytes) -> None:
        """Account one rejected frame and feed the claimed peer's breaker.

        The frame header is unauthenticated, so attribution follows the
        *claimed* source id (like an IP source address): its counter
        rises and its egress breaker records a failure, which after
        ``breaker_failure_threshold`` consecutive rejections opens the
        circuit — we stop spending sockets on a peer that talks garbage.
        Unreadable headers land in ``decode_errors_unattributed``.
        """
        self.decode_errors += 1
        claimed = wire_codec.peek_src(data)
        if claimed is None:
            self.decode_errors_unattributed += 1
            return
        self.decode_errors_by_peer[claimed] = (
            self.decode_errors_by_peer.get(claimed, 0) + 1
        )
        channel = self._channels.get(claimed)
        if channel is None:
            channel = _PeerChannel(self, claimed)
            self._channels[claimed] = channel
        channel.breaker.record_failure()

    def _dispatch(self, node_id: NodeId, data: bytes) -> None:
        if not self.registry.is_connected(node_id) or node_id in self._crashed:
            return
        try:
            src, message = wire_codec.decode_frame(data)
        except wire_codec.CodecError:
            self._on_decode_error(data)
            return  # malformed datagram: drop, count, never deliver
        self._ingest(node_id, src, message)

    async def _serve_stream(self, node_id: NodeId, reader, writer) -> None:
        """Persistent inbound stream: read length-prefixed frames until EOF."""
        conns = self._server_conns.setdefault(node_id, set())
        conns.add(writer)
        task = asyncio.current_task()
        self._serve_tasks.add(task)
        try:
            while True:
                header = await reader.readexactly(_LENGTH.size)
                (length,) = _LENGTH.unpack(header)
                if length > wire_codec.MAX_FRAME_BYTES:
                    # A hostile length prefix: reject *before* allocating
                    # and kill the stream — framing is unrecoverable.
                    self._on_decode_error(b"")
                    break
                payload = await reader.readexactly(length)
                if not self.registry.is_connected(node_id) or node_id in self._crashed:
                    continue
                try:
                    src, message = wire_codec.decode_frame(payload)
                except wire_codec.CodecError:
                    self._on_decode_error(payload)
                    continue
                self._ingest(node_id, src, message)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            conns.discard(writer)
            self._serve_tasks.discard(task)
            writer.close()

    # ------------------------------------------------------------------
    # introspection & teardown
    # ------------------------------------------------------------------
    def resilience_snapshot(self) -> Dict[str, object]:
        """JSON-safe state of the resilience layer (for reports/metrics).

        The payload carries a stable ``schema`` tag
        (:data:`~repro.runtime.resilience.RESILIENCE_SNAPSHOT_SCHEMA`);
        the full counter schema is documented in docs/RESILIENCE.md.
        """
        breakers = BreakerCounters()
        states: Dict[str, int] = {}
        for channel in self._channels.values():
            breakers.merge(channel.breaker.counters)
            states[channel.breaker.state] = states.get(channel.breaker.state, 0) + 1
        return {
            "schema": RESILIENCE_SNAPSHOT_SCHEMA,
            "breaker": breakers.as_dict(),
            "breaker_states": states,
            "ingress": self._ingress.as_dict(),
            "connect_failures": self.connect_failures,
            "frames_abandoned": self.frames_abandoned,
            "decode_errors": {
                "total": self.decode_errors,
                "unattributed": self.decode_errors_unattributed,
                "by_peer": {
                    str(peer): count
                    for peer, count in sorted(self.decode_errors_by_peer.items())
                },
            },
        }

    async def close(self) -> None:
        """Tear down all endpoints, channels and the pump."""
        self._closing = True
        self._ingress_event.set()
        if self._pump_task is not None:
            self._pump_task.cancel()
        for channel in self._channels.values():
            channel.close()
        for transport in self._endpoints.values():
            transport.close()
        for writers in self._server_conns.values():
            for writer in writers:
                writer.close()
        for server in self._servers.values():
            server.close()
            await server.wait_closed()
        if self._serve_tasks:
            # Closed writers give the stream handlers EOF; let them exit
            # before the loop shuts down (avoids cancellation noise).
            await asyncio.gather(*list(self._serve_tasks), return_exceptions=True)
        self._endpoints.clear()
        self._servers.clear()
        self._server_conns.clear()
        # _channels is kept: resilience_snapshot() reads breaker state
        # after teardown (their writer tasks are cancelled above).


class _PeriodicHandle:
    """Asyncio counterpart of the simulator's periodic timer."""

    def __init__(self, loop, interval, callback, first_delay, jitter) -> None:
        self._loop = loop
        self.interval = interval
        self._callback = callback
        self._jitter = jitter
        self.stopped = False
        self._handle = loop.call_later(max(0.0, first_delay), self._tick)

    def _tick(self) -> None:
        if self.stopped:
            return
        self._callback()
        if self.stopped:
            return
        delay = self.interval + (self._jitter() if self._jitter is not None else 0.0)
        self._handle = self._loop.call_later(max(0.001, delay), self._tick)

    def stop(self) -> None:
        self.stopped = True
        if self._handle is not None:
            self._handle.cancel()
