"""Socket transport for the asyncio runtime.

Each node owns one UDP datagram endpoint (unreliable path) and one TCP
server (reliable path, used by audits).  Messages are serialised with
:mod:`pickle` framed by a 4-byte length prefix on TCP and sent as single
datagrams on UDP.  Pickle is acceptable here because the runtime is a
single-operator deployment tool (all endpoints are ours); a hostile
deployment would swap in a schema codec — the message dataclasses are
flat tuples of ints/bools, so that swap is mechanical.

The :class:`NodeRegistry` is the bootstrap directory mapping node ids to
socket addresses; it also implements expulsion (an expelled node's
address is removed, so peers can no longer reach it and its own sends
are refused).
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.util.validation import require

NodeId = int
Address = Tuple[str, int]

_LENGTH = struct.Struct("!I")


class NodeRegistry:
    """Directory of node addresses with expulsion support."""

    def __init__(self) -> None:
        self._udp: Dict[NodeId, Address] = {}
        self._tcp: Dict[NodeId, Address] = {}
        self._expelled: set = set()

    def register(self, node_id: NodeId, udp: Address, tcp: Address) -> None:
        """Publish a node's endpoints."""
        self._udp[node_id] = udp
        self._tcp[node_id] = tcp

    def expel(self, node_id: NodeId) -> None:
        """Remove a node from the fabric."""
        self._expelled.add(node_id)

    def is_connected(self, node_id: NodeId) -> bool:
        """Whether a node is registered and not expelled."""
        return node_id in self._udp and node_id not in self._expelled

    def udp_address(self, node_id: NodeId) -> Optional[Address]:
        """UDP endpoint of ``node_id`` (None when unreachable)."""
        if node_id in self._expelled:
            return None
        return self._udp.get(node_id)

    def tcp_address(self, node_id: NodeId) -> Optional[Address]:
        """TCP endpoint of ``node_id`` (None when unreachable)."""
        if node_id in self._expelled:
            return None
        return self._tcp.get(node_id)


class _DatagramProtocol(asyncio.DatagramProtocol):
    def __init__(self, on_datagram: Callable[[bytes], None]) -> None:
        self._on_datagram = on_datagram

    def datagram_received(self, data: bytes, addr) -> None:  # noqa: D102
        self._on_datagram(data)

    def error_received(self, exc) -> None:  # noqa: D102
        pass  # loopback ICMP errors are uninteresting


class AsyncTransport:
    """The transport facade over asyncio sockets.

    Satisfies the same interface as
    :class:`repro.gossip.protocol.SimTransport`: ``clock``,
    ``call_later``, ``call_every``, ``send`` — so a
    :class:`~repro.gossip.protocol.GossipNode` runs on it unmodified.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        registry: NodeRegistry,
        *,
        loss_rate: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        epoch: Optional[float] = None,
    ) -> None:
        require(0.0 <= loss_rate < 1.0, "loss_rate must be in [0, 1)")
        self.loop = loop
        self.registry = registry
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.epoch = loop.time() if epoch is None else epoch
        self._endpoints: Dict[NodeId, asyncio.DatagramTransport] = {}
        #: node -> (receiver callable, dispatch table or None)
        self._receivers: Dict[NodeId, Tuple[Callable[[NodeId, object], None], Optional[dict]]] = {}
        self._servers: Dict[NodeId, asyncio.AbstractServer] = {}
        self.datagrams_sent = 0
        self.datagrams_dropped = 0

    # ------------------------------------------------------------------
    # the facade used by GossipNode
    # ------------------------------------------------------------------
    def clock(self) -> float:
        """Seconds since the cluster epoch."""
        return self.loop.time() - self.epoch

    def call_later(self, delay: float, callback: Callable[..., None], *args):
        """Schedule on the event loop; returns the asyncio handle."""
        return self.loop.call_later(delay, callback, *args)

    def call_every(self, interval: float, callback, *, first_delay: float, jitter=None):
        """Periodic scheduling with the same semantics as the simulator."""
        return _PeriodicHandle(self.loop, interval, callback, first_delay, jitter)

    def send(self, src: NodeId, dst: NodeId, message: object, reliable: bool) -> bool:
        """Ship one message; datagrams may be synthetically dropped."""
        if not self.registry.is_connected(src) or not self.registry.is_connected(dst):
            return False
        payload = pickle.dumps((src, message), protocol=pickle.HIGHEST_PROTOCOL)
        if not reliable:
            endpoint = self._endpoints.get(src)
            address = self.registry.udp_address(dst)
            if endpoint is None or address is None:
                return False
            self.datagrams_sent += 1
            if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
                self.datagrams_dropped += 1
                return True
            endpoint.sendto(payload, address)
            return True
        address = self.registry.tcp_address(dst)
        if address is None:
            return False
        self.loop.create_task(self._send_stream(address, payload))
        return True

    async def _send_stream(self, address: Address, payload: bytes) -> None:
        try:
            _reader, writer = await asyncio.open_connection(*address)
        except OSError:
            return
        try:
            writer.write(_LENGTH.pack(len(payload)) + payload)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # endpoint lifecycle
    # ------------------------------------------------------------------
    async def open_endpoints(
        self, node_id: NodeId, receiver: Callable[[NodeId, object], None]
    ) -> None:
        """Bind the node's UDP socket and TCP server on loopback.

        When ``receiver`` is a bound method of an endpoint that
        publishes a ``dispatch_table`` (``GossipNode.on_message`` does),
        incoming messages jump straight to the type-keyed handler —
        the same delivery fast path the simulated network uses, minus
        one ``on_message`` frame per datagram.
        """
        owner = getattr(receiver, "__self__", None)
        table = getattr(owner, "dispatch_table", None)
        self._receivers[node_id] = (receiver, table)
        transport, _protocol = await self.loop.create_datagram_endpoint(
            lambda: _DatagramProtocol(lambda data: self._dispatch(node_id, data)),
            local_addr=("127.0.0.1", 0),
        )
        self._endpoints[node_id] = transport
        udp_addr = transport.get_extra_info("sockname")

        server = await asyncio.start_server(
            lambda r, w: self._serve_stream(node_id, r, w), "127.0.0.1", 0
        )
        self._servers[node_id] = server
        tcp_addr = server.sockets[0].getsockname()
        self.registry.register(node_id, udp_addr, tcp_addr)

    def _deliver_local(self, node_id: NodeId, src: NodeId, message: object) -> None:
        """Hand a decoded message to the node (UDP and TCP share this)."""
        entry = self._receivers.get(node_id)
        if entry is None:
            return
        receiver, table = entry
        if table is not None:
            handler = table.get(message.__class__)
            if handler is not None:
                handler(src, message)
            return
        receiver(src, message)

    def _dispatch(self, node_id: NodeId, data: bytes) -> None:
        if not self.registry.is_connected(node_id):
            return
        try:
            src, message = pickle.loads(data)
        except Exception:
            return  # malformed datagram: drop, as a real stack would
        self._deliver_local(node_id, src, message)

    async def _serve_stream(self, node_id: NodeId, reader, writer) -> None:
        try:
            header = await reader.readexactly(_LENGTH.size)
            (length,) = _LENGTH.unpack(header)
            payload = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, OSError):
            return
        finally:
            writer.close()
        if not self.registry.is_connected(node_id):
            return
        try:
            src, message = pickle.loads(payload)
        except Exception:
            return
        self._deliver_local(node_id, src, message)

    async def close(self) -> None:
        """Tear down all endpoints."""
        for transport in self._endpoints.values():
            transport.close()
        for server in self._servers.values():
            server.close()
            await server.wait_closed()
        self._endpoints.clear()
        self._servers.clear()


class _PeriodicHandle:
    """Asyncio counterpart of the simulator's periodic timer."""

    def __init__(self, loop, interval, callback, first_delay, jitter) -> None:
        self._loop = loop
        self.interval = interval
        self._callback = callback
        self._jitter = jitter
        self.stopped = False
        self._handle = loop.call_later(max(0.0, first_delay), self._tick)

    def _tick(self) -> None:
        if self.stopped:
            return
        self._callback()
        if self.stopped:
            return
        delay = self.interval + (self._jitter() if self._jitter is not None else 0.0)
        self._handle = self._loop.call_later(max(0.001, delay), self._tick)

    def stop(self) -> None:
        self.stopped = True
        if self._handle is not None:
            self._handle.cancel()
