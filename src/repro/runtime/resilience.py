"""Resilience primitives for the live plane.

The asyncio transport wraps its egress and ingress in three small,
independently testable mechanisms (the classic middleware fault-handling
triad — retry, circuit breaking, queue-based load leveling):

* :class:`RetryPolicy` — exponential backoff with decorrelating jitter
  for transient egress failures (a refused TCP connect, a dropped
  stream).  Delays are drawn from an injected RNG so tests are
  deterministic.
* :class:`CircuitBreaker` — a per-peer closed/open/half-open gate.
  ``failure_threshold`` consecutive failures open the circuit; while
  open, attempts are suppressed instantly (no socket work, no backoff
  sleeps); after ``reset_timeout`` the next attempt is admitted as a
  *half-open probe* whose outcome either closes the circuit or re-opens
  it.  Every transition is counted, so a chaos run can assert "the
  breaker opened and recovered" from the counters alone.
* :class:`BoundedIngressQueue` — the load-leveling buffer between the
  sockets and the protocol nodes.  Decoded messages are queued and
  drained in bounded batches by a pump task (throttling: the pump
  yields to the event loop between batches); when the queue is full the
  configured overflow policy either drops the oldest entry or rejects
  the newcomer — both counted, never unbounded.

All state transitions take the current time as an argument (or a clock
callable at construction) instead of reading a wall clock, which keeps
the simulator and the test suite in charge of time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro.util.validation import require

__all__ = [
    "BoundedIngressQueue",
    "CircuitBreaker",
    "RESILIENCE_SNAPSHOT_SCHEMA",
    "ResilienceConfig",
    "RetryPolicy",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
]

#: schema tag of :meth:`AsyncTransport.resilience_snapshot` payloads.
#: Bump the suffix on any breaking change to the counter layout — the
#: snapshot is the measurement surface for the chaos scenarios *and*
#: the load generator (see docs/RESILIENCE.md for the full schema).
RESILIENCE_SNAPSHOT_SCHEMA = "repro.resilience_snapshot/1"

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"

DROP_OLDEST = "drop-oldest"
REJECT = "reject"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient egress failures.

    Attempt ``k`` (0-based) sleeps ``base_delay * multiplier**k``,
    capped at ``max_delay``, then scaled by a uniform jitter factor in
    ``[1 - jitter, 1 + jitter]``.  ``max_attempts`` bounds the whole
    cycle; a caller that exhausts it reports the failure to its circuit
    breaker and abandons the payload (counted, never retried forever).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        require(self.max_attempts >= 1, "max_attempts must be >= 1")
        require(self.base_delay >= 0.0, "base_delay must be >= 0")
        require(self.multiplier >= 1.0, "multiplier must be >= 1")
        require(0.0 <= self.jitter < 1.0, "jitter must be in [0, 1)")

    def delay(self, attempt: int, rng: Optional[np.random.Generator] = None) -> float:
        """Backoff before retrying after the ``attempt``-th failure."""
        raw = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if rng is None or self.jitter == 0.0:
            return raw
        return raw * float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))


@dataclass
class BreakerCounters:
    """Cumulative transition/outcome counts of one circuit breaker."""

    successes: int = 0
    failures: int = 0
    opens: int = 0
    closes: int = 0
    half_open_probes: int = 0
    suppressed: int = 0

    def merge(self, other: "BreakerCounters") -> None:
        self.successes += other.successes
        self.failures += other.failures
        self.opens += other.opens
        self.closes += other.closes
        self.half_open_probes += other.half_open_probes
        self.suppressed += other.suppressed

    def as_dict(self) -> Dict[str, int]:
        return {
            "successes": self.successes,
            "failures": self.failures,
            "opens": self.opens,
            "closes": self.closes,
            "half_open_probes": self.half_open_probes,
            "suppressed": self.suppressed,
        }


class CircuitBreaker:
    """Closed / open / half-open gate guarding one unreliable peer.

    Usage: call :meth:`allow` before an attempt — ``False`` means the
    circuit is open and the attempt must be suppressed without any
    socket work; ``True`` admits it (and, when the reset timeout has
    elapsed on an open circuit, marks it as the half-open probe).  Then
    report the outcome with :meth:`record_success` /
    :meth:`record_failure`.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        failure_threshold: int = 2,
        reset_timeout: float = 0.4,
    ) -> None:
        require(failure_threshold >= 1, "failure_threshold must be >= 1")
        require(reset_timeout > 0.0, "reset_timeout must be > 0")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = STATE_CLOSED
        self.counters = BreakerCounters()
        self._consecutive_failures = 0
        self._opened_at = 0.0

    def allow(self) -> bool:
        """Gate one attempt; transitions open → half-open when due."""
        if self.state == STATE_CLOSED:
            return True
        if self.state == STATE_HALF_OPEN:
            # One probe in flight at a time; concurrent attempts wait.
            self.counters.suppressed += 1
            return False
        if self.clock() - self._opened_at >= self.reset_timeout:
            self.state = STATE_HALF_OPEN
            self.counters.half_open_probes += 1
            return True
        self.counters.suppressed += 1
        return False

    def record_success(self) -> None:
        self.counters.successes += 1
        self._consecutive_failures = 0
        if self.state != STATE_CLOSED:
            self.state = STATE_CLOSED
            self.counters.closes += 1

    def record_failure(self) -> None:
        self.counters.failures += 1
        self._consecutive_failures += 1
        if self.state == STATE_HALF_OPEN:
            self._open()
        elif self.state == STATE_CLOSED and (
            self._consecutive_failures >= self.failure_threshold
        ):
            self._open()

    def _open(self) -> None:
        self.state = STATE_OPEN
        self._opened_at = self.clock()
        self.counters.opens += 1


class BoundedIngressQueue:
    """Bounded FIFO between the sockets and the protocol nodes.

    ``push`` never blocks: on overflow the ``drop-oldest`` policy evicts
    the head to admit the newcomer (freshest-data-wins, right for a
    streaming protocol), ``reject`` refuses the newcomer.  Both paths
    are counted, and ``high_water`` records the peak depth so a run can
    prove its queues stayed bounded.
    """

    def __init__(
        self,
        capacity: int = 4096,
        policy: str = DROP_OLDEST,
        on_evict: Optional[Callable] = None,
    ) -> None:
        require(capacity >= 1, "capacity must be >= 1")
        require(policy in (DROP_OLDEST, REJECT), "policy must be drop-oldest or reject")
        self.capacity = capacity
        self.policy = policy
        #: observer of drop-oldest evictions (the evicted item is passed
        #: through) — lets a probe attribute drops to individual frames
        #: without the queue knowing anything about frame contents.
        self.on_evict = on_evict
        self._queue: Deque = deque()
        self.accepted = 0
        self.dropped_oldest = 0
        self.rejected = 0
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, item) -> bool:
        """Enqueue ``item``; False when rejected by the overflow policy."""
        queue = self._queue
        if len(queue) >= self.capacity:
            if self.policy == REJECT:
                self.rejected += 1
                return False
            evicted = queue.popleft()
            self.dropped_oldest += 1
            if self.on_evict is not None:
                self.on_evict(evicted)
        queue.append(item)
        self.accepted += 1
        depth = len(queue)
        if depth > self.high_water:
            self.high_water = depth
        return True

    def drain(self, max_items: int) -> List:
        """Dequeue up to ``max_items`` entries in FIFO order."""
        queue = self._queue
        n = min(max_items, len(queue))
        out = [queue.popleft() for _ in range(n)]
        return out

    def as_dict(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "depth": len(self._queue),
            "high_water": self.high_water,
            "accepted": self.accepted,
            "dropped_oldest": self.dropped_oldest,
            "rejected": self.rejected,
        }


@dataclass(frozen=True)
class ResilienceConfig:
    """Tuning knobs of the live plane's resilience layer."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 2
    breaker_reset_timeout: float = 0.4
    ingress_capacity: int = 4096
    ingress_policy: str = DROP_OLDEST
    #: max messages delivered per pump batch before yielding the loop.
    ingress_batch: int = 128
    #: max frames queued per peer channel awaiting transmission.
    egress_queue_limit: int = 512
    #: max frames coalesced into one TCP write.
    coalesce_frames: int = 64
