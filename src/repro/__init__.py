"""LiFTinG: Lightweight Freerider-Tracking in Gossip — full reproduction.

A production-quality reimplementation of Guerraoui, Huguenin, Kermarrec,
Monod & Prusty, *LiFTinG: Lightweight Freerider-Tracking in Gossip*
(MIDDLEWARE 2010), including every substrate the paper depends on:

* a deterministic discrete-event simulator with lossy-UDP / reliable-TCP
  channel models (:mod:`repro.sim`) standing in for PlanetLab;
* the three-phase gossip dissemination protocol (:mod:`repro.gossip`);
* membership / random peer sampling (:mod:`repro.membership`);
* freerider and colluder behaviour models (:mod:`repro.nodes`);
* LiFTinG itself — direct verifications, cross-checking, entropy-based
  history audits, the manager-based reputation substrate and expulsion
  (:mod:`repro.core`);
* the closed-form analysis (:mod:`repro.analysis`) and the vectorised
  Monte-Carlo engine that backs it (:mod:`repro.mc`);
* metrics and experiment runners regenerating every figure and table of
  the paper's evaluation (:mod:`repro.metrics`, :mod:`repro.experiments`);
* an asyncio runtime that runs the very same protocol objects over real
  UDP/TCP sockets (:mod:`repro.runtime`);
* the declarative scenario registry — every experiment is registered
  against one engine and returns a uniform JSON-serialisable
  :class:`RunResult` envelope (:mod:`repro.scenarios`)::

      from repro import run_scenario
      result = run_scenario("fig1", n=100, duration=25.0, jobs=3)

Quickstart::

    from repro import ClusterConfig, SimCluster, planetlab_params

    gossip, lifting = planetlab_params()
    cluster = SimCluster(ClusterConfig(gossip=gossip, lifting=lifting,
                                       freerider_fraction=0.1, seed=1))
    cluster.run(until=30.0)
    print(cluster.detection().summary())
"""

from repro.analysis import (
    expected_blame_freerider,
    expected_blame_honest,
    max_bias_probability,
)
from repro.config import (
    FreeriderDegree,
    GossipParams,
    HONEST_DEGREE,
    LiftingParams,
    analysis_params,
    planetlab_params,
    recommended_fanout,
)
from repro.core import (
    Auditor,
    ExpulsionController,
    ManagerAssignment,
    ReputationManager,
    ScoreBoard,
    VerificationEngine,
)
from repro.experiments import ClusterConfig, SimCluster
from repro.gossip import GossipNode, LocalHistory, StreamSource
from repro.mc import BlameModel, simulate_scores
from repro.membership import FullMembership, GossipPeerSampling
from repro.metrics import detection_report, health_curve
from repro.nodes import ColludingBehavior, FreeriderBehavior, HonestBehavior
from repro.scenarios import (
    Param,
    RunResult,
    ScenarioSpec,
    list_scenarios,
    run_scenario,
    scenario,
)
from repro.sim import Network, Simulator

__version__ = "1.0.0"

__all__ = [
    "Auditor",
    "BlameModel",
    "ClusterConfig",
    "ColludingBehavior",
    "ExpulsionController",
    "FreeriderBehavior",
    "FreeriderDegree",
    "FullMembership",
    "GossipNode",
    "GossipParams",
    "GossipPeerSampling",
    "HONEST_DEGREE",
    "HonestBehavior",
    "LiftingParams",
    "LocalHistory",
    "ManagerAssignment",
    "Network",
    "Param",
    "ReputationManager",
    "RunResult",
    "ScenarioSpec",
    "ScoreBoard",
    "SimCluster",
    "Simulator",
    "StreamSource",
    "VerificationEngine",
    "analysis_params",
    "detection_report",
    "expected_blame_freerider",
    "expected_blame_honest",
    "health_curve",
    "list_scenarios",
    "max_bias_probability",
    "planetlab_params",
    "recommended_fanout",
    "run_scenario",
    "scenario",
    "simulate_scores",
    "__version__",
]
