"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
the package can be installed in environments without the ``wheel``
package (``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
