#!/usr/bin/env python3
"""Scenario: measure LiFTinG's bandwidth overhead grid on all cores.

Table 5 of the paper reports the verification + reputation traffic as a
percentage of the data traffic for every combination of stream rate
{674, 1082, 2036} kbps and cross-checking probability p_dcc ∈
{0, 0.5, 1}.  Each grid cell is an *independent* deployment, so the
``table5`` scenario fans the nine clusters out over a process pool and
this example shows that the parallel run reproduces the serial result
bit for bit.

Run with::

    python examples/overhead_grid.py [--jobs N]

``--jobs 0`` (the default here) uses every core.  Equivalent CLI:
``repro run table5 --n 80 --duration 8 --jobs 0`` (or the legacy alias
``repro overhead``).
"""

import argparse
import pickle

from repro import run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", "-j", type=int, default=0,
        help="worker processes for the grid cells (0 = all cores)",
    )
    parser.add_argument("--nodes", "-n", type=int, default=80, help="system size")
    parser.add_argument("--duration", type=float, default=8.0, help="simulated seconds")
    parser.add_argument(
        "--check", action="store_true",
        help="also run serially and verify the cells are byte-identical",
    )
    args = parser.parse_args()

    print(f"measuring the 3x3 overhead grid (n={args.nodes}, jobs={args.jobs})...")
    result = run_scenario(
        "table5", n=args.nodes, duration=args.duration, jobs=args.jobs
    )

    print("\nrate(kbps)  p_dcc  measured   paper")
    for rate, p_dcc, measured, paper in result.artifact.rows():
        print(f"{rate:9.0f}   {p_dcc:4.1f}   {measured:6.2f}%   {paper:5.2f}%")
    print(f"\nwall clock: {result.wall_seconds:.1f}s")

    if args.check:
        print("re-running serially to verify bit-identical results...")
        serial = run_scenario(
            "table5", n=args.nodes, duration=args.duration, jobs=1
        )
        identical = pickle.dumps(serial.artifact) == pickle.dumps(result.artifact)
        print(f"serial wall clock: {serial.wall_seconds:.1f}s "
              f"(speedup {serial.wall_seconds / result.wall_seconds:.2f}x); "
              f"byte-identical: {identical}")


if __name__ == "__main__":
    main()
