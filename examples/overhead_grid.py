#!/usr/bin/env python3
"""Scenario: measure LiFTinG's bandwidth overhead grid on all cores.

Table 5 of the paper reports the verification + reputation traffic as a
percentage of the data traffic for every combination of stream rate
{674, 1082, 2036} kbps and cross-checking probability p_dcc ∈
{0, 0.5, 1}.  Each grid cell is an *independent* deployment, so this
example fans the nine clusters out over a process pool and shows that
the parallel run reproduces the serial result bit for bit.

Run with::

    python examples/overhead_grid.py [--jobs N]

``--jobs 0`` (the default here) uses every core.
"""

import argparse
import pickle
import time

from repro.experiments.table5 import run_table5


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", "-j", type=int, default=0,
        help="worker processes for the grid cells (0 = all cores)",
    )
    parser.add_argument("--nodes", "-n", type=int, default=80, help="system size")
    parser.add_argument("--duration", type=float, default=8.0, help="simulated seconds")
    parser.add_argument(
        "--check", action="store_true",
        help="also run serially and verify the cells are byte-identical",
    )
    args = parser.parse_args()

    print(f"measuring the 3x3 overhead grid (n={args.nodes}, jobs={args.jobs})...")
    start = time.perf_counter()
    result = run_table5(n=args.nodes, duration=args.duration, jobs=args.jobs)
    elapsed = time.perf_counter() - start

    print("\nrate(kbps)  p_dcc  measured   paper")
    for rate, p_dcc, measured, paper in result.rows():
        print(f"{rate:9.0f}   {p_dcc:4.1f}   {measured:6.2f}%   {paper:5.2f}%")
    print(f"\nwall clock: {elapsed:.1f}s")

    if args.check:
        print("re-running serially to verify bit-identical results...")
        start = time.perf_counter()
        serial = run_table5(n=args.nodes, duration=args.duration, jobs=1)
        serial_elapsed = time.perf_counter() - start
        identical = pickle.dumps(serial) == pickle.dumps(result)
        print(f"serial wall clock: {serial_elapsed:.1f}s "
              f"(speedup {serial_elapsed / elapsed:.2f}x); "
              f"byte-identical: {identical}")


if __name__ == "__main__":
    main()
