#!/usr/bin/env python3
"""Scenario: how freeriders degrade a live stream, and how LiFTinG saves it.

Reproduces the story of the paper's Figure 1 on a laptop-sized
deployment: a 674 kbps stream is broadcast to a system with finite
upload headroom.  Three runs:

1. everyone honest (baseline);
2. 25 % heavy freeriders, no LiFTinG — dissemination collapses;
3. 25 % *wise* freeriders under LiFTinG with expulsion — they dare not
   deviate past δ ≈ 0.035 (Figure 12's 50 %-detection point), so the
   stream stays healthy.

Run with::

    python examples/streaming_health.py [--jobs N]

The three deployments are independent; ``--jobs 3`` runs them on three
worker processes with bit-identical curves (``--jobs 0`` = all cores).
Equivalent CLI: ``repro run fig1 --n 100 --duration 25 --jobs 3``.
"""

import argparse

from repro import run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for the three deployments (0 = all cores)",
    )
    args = parser.parse_args()

    print("running three deployments (this takes a minute or two)...")
    result = run_scenario("fig1", n=100, duration=25.0, seed=7, jobs=args.jobs).artifact

    print("\nfraction of nodes viewing a clear stream, by stream lag:")
    print("  lag(s)   baseline   freeriders   freeriders+LiFTinG")
    for lag, base, collapsed, protected in result.rows():
        if lag <= 12 or lag % 5 == 0:
            bar = "*" * int(20 * protected)
            print(f"  {lag:5.0f}    {base:7.2f}    {collapsed:9.2f}    {protected:10.2f}  {bar}")

    lag = 5.0
    print(
        f"\nat a {lag:.0f} s playout delay: baseline "
        f"{result.baseline.fraction_at(lag):.0%} of nodes are clear, "
        f"freeriders alone drop that to "
        f"{result.freeriders_no_lifting.fraction_at(lag):.0%}, "
        f"and LiFTinG restores it to "
        f"{result.freeriders_with_lifting.fraction_at(lag):.0%}."
    )
    print(f"nodes expelled by LiFTinG during the run: {result.expelled_with_lifting}")


if __name__ == "__main__":
    main()
