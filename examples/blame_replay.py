#!/usr/bin/env python3
"""Offline blame replay: Monte-Carlo blame streams through the real
reputation substrate.

The Monte-Carlo blame model (§6.2/§6.3.1) samples per-period blame
*totals* directly; the packet simulator routes every blame through the
manager substrate message by message.  This example bridges the two:
each period's sampled blames are batch-ingested into a real
:class:`~repro.core.reputation.ScoreBoard` over a real
:class:`~repro.core.reputation.ManagerAssignment`
(``ScoreBoard.ingest_blames`` — one aggregation pass per period instead
of one call per blame × manager), then the min-vote scores are read the
same way every detection experiment reads them.  Useful for exploring
manager-count / quorum / threshold trade-offs at populations far beyond
what the packet simulator needs to be invoked for.

Run with::

    PYTHONPATH=src python examples/blame_replay.py
"""

from dataclasses import replace

import numpy as np

from repro.config import FreeriderDegree, analysis_params
from repro.core.reputation import ManagerAssignment, ReputationManager, ScoreBoard
from repro.mc.blame_model import BlameModel
from repro.metrics.scores import detection_report
from repro.util.rng import make_generator


def main() -> None:
    # 1. The analysis setting of Figure 11, at a 2,000-node population
    #    with 1 in 10 freeriders of degree (0.1, 0.1, 0.1).
    gossip, lifting = analysis_params()
    lifting = replace(lifting, managers=8)
    n, freeriders, rounds = 2_000, 200, 50
    model = BlameModel(
        fanout=gossip.fanout,
        request_size=gossip.request_size,
        p_reception=lifting.p_reception,
        p_dcc=lifting.p_dcc,
    )
    degree = FreeriderDegree.uniform(0.1)
    rng = make_generator(11, "blame-replay")

    # 2. A real manager substrate: assignment, one manager per node.
    assignment = ManagerAssignment(range(n), lifting.managers, seed=7)
    clock = {"now": 0.0}
    managers = {
        node: ReputationManager(
            node, assignment, gossip, lifting,
            now=lambda: clock["now"], compensation=model.compensation,
        )
        for node in range(n)
    }
    board = ScoreBoard(managers)
    freerider_ids = set(range(n - freeriders, n))

    # 3. Replay: sample each period's blames for both populations and
    #    batch-ingest them — (target, amount) arrays, one pass/period.
    print(f"replaying {rounds} periods of sampled blames into {n} score records...")
    honest_targets = np.arange(0, n - freeriders)
    freerider_targets = np.arange(n - freeriders, n)
    for _period in range(rounds):
        clock["now"] += gossip.gossip_period
        board.ingest_blames(
            assignment,
            honest_targets,
            model.sample_period_blames(rng, honest_targets.size),
        )
        board.ingest_blames(
            assignment,
            freerider_targets,
            model.sample_period_blames(rng, freerider_targets.size, degree),
        )

    # 4. Min-vote scores + the paper's threshold, as in Figure 11.
    scores = board.scores(range(n), assignment)
    report = detection_report(scores, freerider_ids, eta=lifting.eta)
    print(report.summary())


if __name__ == "__main__":
    main()
