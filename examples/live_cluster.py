#!/usr/bin/env python3
"""Scenario: run the real protocol over real sockets (asyncio runtime).

The same :class:`~repro.gossip.protocol.GossipNode` objects that power
the simulator here run over actual UDP datagram endpoints and TCP
connections on the loopback interface, in real time — the
deployment-shaped counterpart of the paper's PlanetLab experiment.  A
synthetic 3 % datagram loss exercises the compensation machinery.

Run with::

    python examples/live_cluster.py
"""

import asyncio

from repro.config import FreeriderDegree
from repro.runtime import RuntimeCluster, RuntimeConfig


def main() -> None:
    config = RuntimeConfig(
        n=12,
        duration=6.0,
        gossip_period=0.25,
        fanout=4,
        managers=5,
        loss_rate=0.03,
        freerider_fraction=0.25,
        freerider_degree=FreeriderDegree(delta1=0.25, delta2=0.3, delta3=0.3),
        seed=42,
    )
    print(
        f"starting {config.n} nodes on loopback sockets for "
        f"{config.duration:.0f} real seconds..."
    )
    report = asyncio.run(RuntimeCluster(config).run())

    print(f"\nchunks emitted by the source: {report.chunks_emitted}")
    print(f"mean delivery ratio:          {report.delivery_ratio:.1%}")
    print(
        f"datagrams sent/dropped:       {report.datagrams_sent} / "
        f"{report.datagrams_dropped} "
        f"({report.datagrams_dropped / max(1, report.datagrams_sent):.1%} synthetic loss)"
    )

    print("\nscores (min-vote over managers):")
    for node_id in sorted(report.scores):
        role = "freerider" if node_id in report.freerider_ids else "honest   "
        print(f"  node {node_id:2d} [{role}]  {report.scores[node_id]:+8.2f}")

    honest = [s for n, s in report.scores.items() if n not in report.freerider_ids]
    freeriders = [s for n, s in report.scores.items() if n in report.freerider_ids]
    gap = sum(honest) / len(honest) - sum(freeriders) / len(freeriders)
    print(f"\nhonest-vs-freerider score gap after {config.duration:.0f}s: {gap:+.2f}")


if __name__ == "__main__":
    main()
