#!/usr/bin/env python3
"""Scenario: a colluding coalition versus the local-history audit.

Direct cross-checking alone cannot catch colluders — they confirm each
other's lies (§5.2, Figure 8).  This example builds a deployment with a
coalition that (a) biases partner selection towards its members and
(b) mounts the man-in-the-middle attack, then runs LiFTinG's
local-history audits (§5.3) against a colluder and an honest node and
prints the entropy evidence.

It also shows the analytical side: Eq. (7)'s ceiling on how much bias a
coalition can hide from an audit with threshold γ.

Run with::

    python examples/collusion_audit.py
"""

from dataclasses import replace

from repro import ClusterConfig, FreeriderDegree, SimCluster, planetlab_params
from repro.analysis.entropy_analysis import (
    achievable_max_bias,
    max_bias_probability,
)


def run_audit(cluster, auditor_id, target_id):
    results = []
    cluster.nodes[auditor_id].auditor.start(target_id, on_complete=results.append)
    cluster.sim.run(until=cluster.sim.now + 15.0)
    return results[0]


def describe(result, label):
    print(f"\naudit of {label}:")
    print(f"  propose events in window:   {result.proposal_count}")
    print(f"  fanout entropy H(F_h):      {result.fanout_entropy:.2f}  -> pass: {result.passed_fanout}")
    print(f"  fanin  entropy H(F'_h):     {result.fanin_entropy:.2f}  -> pass: {result.passed_fanin}")
    print(f"  confirm-traffic coverage:   {result.confirm_coverage:.0%} -> pass: {result.passed_coverage}")
    print(f"  unacknowledged history:     {result.unacknowledged}/{result.polled_entries}")
    print(f"  verdict: {'PASS' if result.passed else 'EXPEL'}")


def main() -> None:
    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=60, fanout=5, source_fanout=5, chunk_size=2048)
    # γ scaled to the small test window (the paper's 8.95 corresponds to
    # a 600-entry history at n=10,000).
    lifting = replace(lifting, managers=5, history_periods=14, gamma=5.0)

    config = ClusterConfig(
        gossip=gossip,
        lifting=lifting,
        seed=11,
        loss_rate=0.0,
        freerider_fraction=0.25,
        freerider_degree=FreeriderDegree(0, 0, 0),  # they hide in plain sight...
        colluding=True,
        collusion_bias=0.85,  # ...but feed their friends 85 % of the time
        man_in_the_middle=True,
    )
    cluster = SimCluster(config)
    print("running a deployment with a colluding coalition (25 % of nodes)...")
    cluster.run(until=10.0)

    honest_ids = [n for n in cluster.node_ids if n not in cluster.freerider_ids]
    colluder = next(iter(cluster.freerider_ids))
    auditor = honest_ids[0]
    honest_target = honest_ids[1]

    describe(run_audit(cluster, auditor, honest_target), f"honest node {honest_target}")
    describe(run_audit(cluster, auditor, colluder), f"colluder {colluder}")

    print("\n--- analysis: how much bias can a coalition hide? (γ=8.95, n_h f=600) ---")
    for m in (10, 25, 50):
        eq7 = max_bias_probability(8.95, m, 600)
        real = achievable_max_bias(8.95, m, 600)
        print(
            f"  coalition of {m:3d}: Eq.7 ceiling p*_m = {eq7:.2f}, "
            f"integer-feasible ceiling = {real:.2f}"
        )
    print("(the paper's example: 25 colluders can hide ~21 % bias at γ = 8.95)")


if __name__ == "__main__":
    main()
