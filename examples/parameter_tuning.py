#!/usr/bin/env python3
"""Scenario: tune LiFTinG's parameters from the closed-form analysis.

The paper's stance (§9): "a theoretical analysis ... allows system
designers to set its parameters to their optimal values".  This example
plays that designer: given a deployment (n, f, |R|, loss rate), it uses
:mod:`repro.analysis` to derive

* the compensation ``b̃`` (Eq. 5) and the blame a freerider of degree Δ
  should expect (``b̃'(Δ)``),
* the score threshold η and grace period r for target α/β rates
  (Tchebychev bounds of §6.3.1),
* the entropy threshold γ and the history length n_h needed to cap the
  collusion bias (Eq. 7),
* the expected verification message budget (Table 3's model),

and cross-validates the score-based numbers against the Monte-Carlo
engine.

Run with::

    python examples/parameter_tuning.py
"""

import numpy as np

from repro.analysis.detection import (
    alpha_lower_bound,
    beta_upper_bound,
    minimum_periods_for_beta,
)
from repro.analysis.entropy_analysis import (
    gamma_for_window,
    max_bias_probability,
    required_history_for_bias,
)
from repro.analysis.freerider_blames import expected_blame_excess
from repro.analysis.overhead import expected_message_counts
from repro.analysis.wrongful_blames import expected_blame_honest
from repro.config import FreeriderDegree
from repro.mc.blame_model import BlameModel, simulate_scores
from repro.util.rng import make_generator


def main() -> None:
    # --- the deployment the designer is planning -----------------------
    f, request_size, loss = 12, 4, 0.07
    p_r = 1 - loss
    eta = -9.75
    rounds = 50
    degree = FreeriderDegree.uniform(0.1)

    print(f"deployment: f={f}, |R|={request_size}, loss={loss:.0%}")

    # --- blame calibration ---------------------------------------------
    b_honest = expected_blame_honest(f, request_size, p_r)
    excess = expected_blame_excess(degree, f, request_size, p_r)
    print(f"\ncompensation b~ (Eq. 5):                 {b_honest:.2f} per period")
    print(f"freerider (delta=0.1) blame excess:      {excess:.2f} per period")

    # --- thresholds from the Tchebychev bounds --------------------------
    model = BlameModel(f, request_size, p_r)
    rng = make_generator(0, "tuning")
    sigma = model.sample_sigma(rng, samples=100_000)
    print(f"per-period blame stddev sigma(b):        {sigma:.2f} (MC)")
    print(f"beta bound at eta={eta}, r={rounds}:       "
          f"{beta_upper_bound(sigma, rounds, eta):.4f}")
    sigma_fr = model.sample_sigma(rng, samples=100_000, degree=degree)
    print(f"alpha bound for delta=0.1:               "
          f"{alpha_lower_bound(sigma_fr, rounds, eta, excess):.4f}")
    r_min = minimum_periods_for_beta(sigma, eta, 0.01)
    print(f"grace period for beta<=1% (Tchebychev):  {r_min} periods")

    # --- Monte-Carlo cross-validation -----------------------------------
    sample = simulate_scores(
        model, rng, n_honest=20_000, n_freeriders=5_000, degree=degree, rounds=rounds
    )
    print(f"MC at r={rounds}: alpha={sample.detection_fraction(eta):.3f}, "
          f"beta={sample.false_positive_fraction(eta):.4f} "
          "(bounds are loose, MC is exact)")

    # --- audit parameters ------------------------------------------------
    n_h = 50
    window = n_h * f
    gamma = gamma_for_window(window)
    print(f"\naudit window n_h*f = {window}; gamma = {gamma:.2f}")
    for coalition in (10, 25, 50):
        ceiling = max_bias_probability(gamma, coalition, window)
        print(f"  coalition of {coalition:3d} can hide at most "
              f"{ceiling:.0%} bias")
    needed = required_history_for_bias(25, f, max_tolerated_bias=0.15)
    print(f"to cap a 25-node coalition at 15% bias, use n_h >= {needed}")

    # --- message budget ---------------------------------------------------
    counts = expected_message_counts(f, request_size, p_dcc=1.0, managers=25)
    print(f"\nverification message budget per node-period (Table 3 model):")
    print(f"  data path:       {counts.data_messages:.0f}")
    print(f"  acks+confirms:   {counts.verification_messages:.0f} "
          f"({counts.message_overhead_ratio:.0%} of data messages)")
    print(f"  blame worst case: {counts.max_blame_messages:.0f}")
    print("\nlower p_dcc when the system is healthy: at p_dcc=0.25 the "
          f"confirm traffic drops to {expected_message_counts(f, request_size, 0.25, 25).confirms_sent:.0f}")


if __name__ == "__main__":
    main()
