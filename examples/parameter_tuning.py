#!/usr/bin/env python3
"""Scenario: tune LiFTinG's parameters from the closed-form analysis.

The paper's stance (§9): "a theoretical analysis ... allows system
designers to set its parameters to their optimal values".  This example
plays that designer through the ``analyze`` scenario: given a
deployment (f, |R|, loss rate, coalition size), it derives

* the compensation ``b̃`` (Eq. 5) and the blame a freerider of degree Δ
  should expect,
* the score threshold η bounds and grace period r for target α/β rates
  (Tchebychev bounds of §6.3.1), cross-validated against the
  Monte-Carlo engine,
* the entropy threshold γ and the history length n_h needed to cap the
  collusion bias (Eq. 7),
* the expected verification message budget (Table 3's model).

Run with::

    python examples/parameter_tuning.py

Equivalent CLI: ``repro run analyze --set mc-samples=100000`` (the
legacy alias ``repro analyze`` works too).
"""

from repro import run_scenario


def main() -> None:
    # --- the deployment the designer is planning -----------------------
    result = run_scenario(
        "analyze",
        fanout=12,
        request_size=4,
        loss=0.07,
        colluders=25,
        history=50,
        eta=-9.75,
        rounds=50,
        delta=0.1,
        mc_samples=100_000,
    )
    m = result.metrics

    print(f"deployment: f={m['fanout']}, |R|={m['request_size']}, "
          f"loss={m['loss']:.0%}")

    # --- blame calibration ---------------------------------------------
    print(f"\ncompensation b~ (Eq. 5):                 {m['compensation']:.2f} per period")
    excess_01 = m["blame_excess_by_delta"]["0.1"]
    print(f"freerider (delta=0.1) blame excess:      "
          f"{excess_01['excess_per_period']:.2f} per period "
          f"(gain {excess_01['bandwidth_gain']:.0%})")

    # --- thresholds from the Tchebychev bounds --------------------------
    mc = m["monte_carlo"]
    print(f"per-period blame stddev sigma(b):        {mc['sigma']:.2f} (MC)")
    print(f"beta bound at eta={mc['eta']}, r={mc['rounds']}:       "
          f"{mc['beta_bound']:.4f}")
    print(f"alpha bound for delta={mc['delta']:g}:               "
          f"{mc['alpha_bound']:.4f}")
    print(f"grace period for beta<=1% (Tchebychev):  "
          f"{mc['min_periods_beta_1pct']} periods")
    print(f"MC at r={mc['rounds']}: alpha={mc['alpha']:.3f}, "
          f"beta={mc['beta']:.4f} (bounds are loose, MC is exact)")

    # --- audit parameters ------------------------------------------------
    print(f"\naudit window n_h*f = {m['audit_window']}; gamma = {m['gamma']:.2f}")
    for coalition, ceiling in m["coalition_ceilings"].items():
        print(f"  coalition of {int(coalition):3d} can hide at most "
              f"{ceiling:.0%} bias")
    print(f"to cap a 25-node coalition at 15% bias, use n_h >= "
          f"{m['history_for_15pct_bias']}")

    # --- message budget ---------------------------------------------------
    budget = m["message_budget"]
    print("\nverification message budget per node-period (Table 3 model):")
    print(f"  data path:       {budget['data']:.0f}")
    print(f"  acks+confirms:   {budget['verification']:.0f}")
    print(f"  blame worst case: {budget['max_blames']:.0f}")
    print("\nlower p_dcc when the system is healthy: at p_dcc=0.25 the "
          f"confirm traffic drops to {budget['confirms_at_quarter_p_dcc']:.0f}")


if __name__ == "__main__":
    main()
