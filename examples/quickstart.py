#!/usr/bin/env python3
"""Quickstart: detect freeriders in a gossip streaming deployment.

Builds a 100-node simulated deployment of the three-phase gossip
protocol (§3 of the paper) with LiFTinG attached, injects 10 %
freeriders that skimp on every phase, runs 30 simulated seconds, and
prints the resulting score separation and detection report.

Run with::

    python examples/quickstart.py
"""

from dataclasses import replace

import numpy as np

from repro import ClusterConfig, FreeriderDegree, SimCluster, planetlab_params
from repro.experiments.calibration import calibrate


def main() -> None:
    # 1. Parameters: the paper's PlanetLab setting, scaled to 100 nodes.
    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=100, chunk_size=1400)

    # 2. Calibrate the wrongful-blame compensation for this environment
    #    (the designer step of §6.2: honest nodes must score ~0).
    print("calibrating compensation on an honest deployment...")
    calibration = calibrate(gossip, lifting, duration=10.0, loss_rate=0.04)
    print(f"  compensation b~ = {calibration.compensation:.2f} blame/period")
    eta = calibration.eta_for_false_positives(0.01)
    print(f"  threshold eta (false positives <= 1%) = {eta:.2f}")

    # 3. Deploy with 10 % freeriders: contact 6 of 7 partners, propose
    #    and serve only 90 % (the paper's §7.1 configuration).
    config = ClusterConfig(
        gossip=gossip,
        lifting=lifting,
        seed=1,
        loss_rate=0.04,
        freerider_fraction=0.10,
        freerider_degree=FreeriderDegree(delta1=1 / 7, delta2=0.1, delta3=0.1),
        compensation=calibration.compensation,
    )
    cluster = SimCluster(config)
    print("\nrunning 30 simulated seconds...")
    cluster.run(until=30.0)

    # 4. Read the min-vote scores from the managers and apply the
    #    threshold.
    scores = cluster.scores()
    honest = [s for n, s in scores.items() if n not in cluster.freerider_ids]
    freeriders = [s for n, s in scores.items() if n in cluster.freerider_ids]
    print(f"  honest:    mean score {np.mean(honest):+6.2f}  (n={len(honest)})")
    print(f"  freerider: mean score {np.mean(freeriders):+6.2f}  (n={len(freeriders)})")

    report = cluster.detection(eta=eta)
    print(f"\n{report.summary()}")

    # 5. Overhead of the verification machinery (Table 5's metric).
    print(f"\nbandwidth overhead: {cluster.overhead()}")


if __name__ == "__main__":
    main()
