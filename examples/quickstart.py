#!/usr/bin/env python3
"""Quickstart: detect freeriders in a gossip streaming deployment.

One call — the ``detect`` scenario calibrates the wrongful-blame
compensation on an honest deployment (the designer step of §6.2),
deploys 100 nodes with 10 % freeriders that skimp on every phase
(§7.1's configuration), runs 30 simulated seconds, and reports the
score separation, the detection report and the bandwidth overhead.

Run with::

    python examples/quickstart.py

Every scenario is declarative data against one engine: ``repro list``
shows them all, ``repro describe detect`` the parameters used here,
and ``repro run detect --json -`` the same run as a structured
``RunResult`` envelope (see docs/SCENARIOS.md).
"""

from repro import run_scenario


def main() -> None:
    print("running the 'detect' scenario (calibration + deployment)...")
    result = run_scenario("detect", n=100, seed=1, duration=30.0)

    # The rich in-memory artifact: calibration, detection report,
    # overhead report, expulsion lists.
    detect = result.artifact
    print(f"\n  compensation b~ = {detect.compensation:.2f} blame/period")
    print(f"  threshold eta (false positives <= 1%) = {detect.eta:.2f}")
    print(f"  honest:    mean score {detect.report.honest.mean:+6.2f}")
    print(f"  freerider: mean score {detect.report.freeriders.mean:+6.2f}")
    print(f"\n{detect.report.summary()}")
    print(f"\nbandwidth overhead: {detect.overhead}")

    # The same numbers as the uniform, serialisable envelope (what
    # `repro run detect --json -` prints, and what benchmark baselines
    # are stored as).
    print("\nstructured metrics payload:")
    for key, value in result.metrics.items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
