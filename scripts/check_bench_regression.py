#!/usr/bin/env python
"""Guard the simulation substrate's performance.

Re-times the substrate kernels (event engine, network send/deliver,
300- and 1000-node clusters, Table 5's six-cell experiment grid through
the parallel orchestration layer, and the peak-memory footprint of a
warm cluster300 sim-second) and compares them against the ``current``
baselines in ``benchmarks/BENCH_substrate.json``.  Exits non-zero if
any kernel regressed by more than ``TOLERANCE`` (30 %).

The baselines file is a serialised ``repro.scenarios.RunResult``
envelope (the baselines live in its ``metrics``); reading and writing
it exclusively through ``RunResult.load``/``dump`` keeps the benchmark
and experiment schemas from drifting apart.

On machines with >= 4 cores the ``jobs=4`` speedup of the six-cell
grid is additionally checked against the ``parallel`` section's
recorded target (>= 2.5x, the ISSUE 2 acceptance bar); on smaller
machines the speedup check is skipped (the serial-grid kernel still
guards the orchestration layer's overhead there).

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py           # check
    PYTHONPATH=src python scripts/check_bench_regression.py --update  # refresh baselines
    PYTHONPATH=src python scripts/check_bench_regression.py --skip-cluster

The kernels intentionally mirror ``benchmarks/bench_substrate_performance.py``
and ``benchmarks/bench_parallel_experiments.py`` but run without
pytest-benchmark so the check stays dependency-light and fast enough
for CI smoke runs.  See docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

import numpy as np

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:  # runnable without PYTHONPATH=src
    sys.path.insert(0, str(_REPO_ROOT / "src"))

BENCH_FILE = _REPO_ROOT / "benchmarks" / "BENCH_substrate.json"
TOLERANCE = 0.30
#: the six-cell Table 5 grid of benchmarks/bench_parallel_experiments.py.
GRID_KWARGS = dict(
    n=50,
    duration=3.0,
    seed=31,
    rates_kbps=(674.0, 1082.0),
    p_dcc_values=(0.0, 0.5, 1.0),
)
SPEEDUP_JOBS = 4


def _as_mutable(value):
    """Deep-copy the canonical (tuple-based) metrics into plain dicts/lists."""
    if isinstance(value, dict):
        return {key: _as_mutable(item) for key, item in value.items()}
    if isinstance(value, tuple):
        return [_as_mutable(item) for item in value]
    return value


def best_of(fn, reps):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_engine() -> float:
    """Events/second through the engine hot path (schedule + args)."""
    from repro.sim.engine import Simulator

    def run_10k():
        sim = Simulator()
        state = [0]

        def tick(state):
            state[0] += 1
            if state[0] < 10_000:
                sim.schedule(sim.now + 0.001, tick, state)

        sim.schedule(0.001, tick, state)
        sim.run()

    return 10_000 / best_of(run_10k, reps=9)


def bench_send_deliver() -> float:
    """Messages/second through the full network send + deliver path."""
    from repro.sim.engine import Simulator
    from repro.sim.latency import UniformLatency
    from repro.sim.loss import BernoulliLoss
    from repro.sim.network import Network
    from repro.wire import Propose

    class Sink:
        def __init__(self, node_id):
            self.node_id = node_id

        def on_message(self, src, message):
            pass

    def run_10k():
        sim = Simulator()
        net = Network(
            sim,
            latency=UniformLatency(np.random.default_rng(3), 0.01, 0.08),
            loss=BernoulliLoss(np.random.default_rng(4), 0.04),
        )
        net.register(Sink(0))
        net.register(Sink(1))
        msg = Propose(proposal_id=1, chunk_ids=(1, 2, 3))
        for _ in range(10_000):
            net.send(0, 1, msg)
        sim.run()

    return 10_000 / best_of(run_10k, reps=7)


def _bench_cluster(n: int, warmup: float, reps: int) -> float:
    """Seconds of wall clock per simulated second, warm ``n``-node run."""
    from repro.experiments.scaling import scaling_config
    from repro.experiments.cluster import SimCluster

    cluster = SimCluster(scaling_config(n, seed=1))
    cluster.run(until=warmup)

    best = float("inf")
    until = warmup
    for _ in range(reps):
        until += 1.0
        start = time.perf_counter()
        cluster.run(until=until)
        best = min(best, time.perf_counter() - start)
    return best


def bench_cluster300() -> float:
    """The n=300 (PlanetLab scale) cluster kernel."""
    return _bench_cluster(300, warmup=3.0, reps=3)


def bench_cluster300_peak_mem() -> float:
    """Peak tracemalloc MiB allocated over one warm cluster300 sim-second.

    Guards the memory side of the delivery plane: the calendar-queue
    timeline (or any future scheduler change) must not trade unbounded
    buffering for speed.  tracemalloc counts only allocations made
    while tracing, i.e. the marginal footprint of a steady-state
    simulated second (in-flight messages, timeline buckets, protocol
    state growth) — wall-clock under tracing is irrelevant, so this
    kernel is far less machine-sensitive than the timing ones.
    """
    import tracemalloc

    from repro.experiments.scaling import scaling_config
    from repro.experiments.cluster import SimCluster

    cluster = SimCluster(scaling_config(300, seed=1))
    cluster.run(until=3.0)
    tracemalloc.start()
    try:
        cluster.run(until=4.0)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024 * 1024)


def bench_cluster1000() -> float:
    """The n=1000 (large-n target) cluster kernel."""
    return _bench_cluster(1000, warmup=2.0, reps=2)


def bench_cluster1000_peak_mem() -> float:
    """Peak tracemalloc MiB allocated over one warm cluster1000 sim-second.

    The large-n counterpart of ``bench_cluster300_peak_mem``: the
    struct-of-arrays node state keeps the *marginal* allocation churn of
    a steady-state sim-second from scaling with per-node dict traffic,
    and this kernel is the gate.  Like the 300-node version it measures
    allocations, not time, so it is enforced even on noisy CI runners
    (``--skip-cluster`` does not skip it).
    """
    import tracemalloc

    from repro.experiments.scaling import scaling_config
    from repro.experiments.cluster import SimCluster

    cluster = SimCluster(scaling_config(1000, seed=1))
    cluster.run(until=2.0)
    tracemalloc.start()
    try:
        cluster.run(until=3.0)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024 * 1024)


_SERIAL_GRID_S: list = []  # memo so the speedup check reuses the kernel's run


def bench_table5_grid_serial() -> float:
    """Wall-clock seconds for the six-cell grid through the job runner
    (``jobs=1``) — guards the orchestration layer's serial overhead."""
    from repro.experiments.table5 import run_table5

    measured = best_of(lambda: run_table5(jobs=1, **GRID_KWARGS), reps=2)
    _SERIAL_GRID_S.append(measured)
    return measured


def bench_table5_grid_speedup() -> float:
    """``jobs=4`` speedup over ``jobs=1`` on the six-cell grid."""
    from repro.experiments.table5 import run_table5

    serial = _SERIAL_GRID_S[-1] if _SERIAL_GRID_S else bench_table5_grid_serial()
    parallel = best_of(lambda: run_table5(jobs=SPEEDUP_JOBS, **GRID_KWARGS), reps=2)
    return serial / parallel


# metric key -> (runner, higher_is_better)
KERNELS = {
    "engine_events_per_s": (bench_engine, True),
    "send_deliver_msgs_per_s": (bench_send_deliver, True),
    "cluster300_s_per_sim_second": (bench_cluster300, False),
    "cluster300_peak_mem_mib": (bench_cluster300_peak_mem, False),
    "cluster1000_s_per_sim_second": (bench_cluster1000, False),
    "cluster1000_peak_mem_mib": (bench_cluster1000_peak_mem, False),
    "table5_6cell_grid_serial_s": (bench_table5_grid_serial, False),
}

#: kernels skipped by --skip-cluster (the slow deployment-scale timing
#: ones; the peak-memory kernels stay — they do not depend on machine
#: speed, so they are enforced even on noisy CI runners).
CLUSTER_KERNELS = ("cluster300_s_per_sim_second", "cluster1000_s_per_sim_second")

UNITS = {
    "engine_events_per_s": "ops/s",
    "send_deliver_msgs_per_s": "ops/s",
    "cluster300_s_per_sim_second": "s/sim-s",
    "cluster300_peak_mem_mib": "MiB",
    "cluster1000_s_per_sim_second": "s/sim-s",
    "cluster1000_peak_mem_mib": "MiB",
    "table5_6cell_grid_serial_s": "s",
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true", help="write measured numbers as the new 'current' baselines")
    parser.add_argument("--skip-cluster", action="store_true", help="skip the (slower) 300- and 1000-node cluster kernels")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=TOLERANCE,
        help="allowed fractional regression before failing (default %(default)s; "
        "CI uses a looser value because shared runners vary across machine "
        "generations more than an idle dev box does)",
    )
    args = parser.parse_args(argv)
    tolerance = args.tolerance

    from repro.scenarios import RunResult

    envelope = RunResult.load(BENCH_FILE)
    data = {key: _as_mutable(value) for key, value in envelope.metrics.items()}
    current = data["current"]
    failures = []

    for key, (runner, higher_is_better) in KERNELS.items():
        if args.skip_cluster and key in CLUSTER_KERNELS:
            continue
        measured = runner()
        baseline = current.get(key)
        unit = UNITS.get(key, "ops/s" if higher_is_better else "s")
        baseline_text = "none" if baseline is None else f"{baseline:,.1f}"
        print(f"{key}: measured {measured:,.1f} {unit} (baseline {baseline_text})")
        if args.update:
            current[key] = round(measured, 4) if not higher_is_better else int(measured)
            continue
        if baseline is None:
            continue
        if higher_is_better:
            regressed = measured < baseline * (1.0 - tolerance)
        else:
            regressed = measured > baseline * (1.0 + tolerance)
        if regressed:
            failures.append(f"{key}: {measured:,.1f} vs baseline {baseline:,.1f} (>{tolerance:.0%} regression)")

    # Parallel scaling: only meaningful (and only enforced) with the
    # worker count's worth of physical cores available.
    parallel = data.get("parallel", {})
    target = parallel.get("table5_speedup_4jobs_target")
    cores = os.cpu_count() or 1
    if target is not None and not args.update:
        if cores >= SPEEDUP_JOBS:
            speedup = bench_table5_grid_speedup()
            print(
                f"table5_speedup_{SPEEDUP_JOBS}jobs: measured {speedup:.2f}x "
                f"(target {target:.2f}x)"
            )
            if speedup < target * (1.0 - tolerance):
                failures.append(
                    f"table5_speedup_{SPEEDUP_JOBS}jobs: {speedup:.2f}x vs "
                    f"target {target:.2f}x (>{tolerance:.0%} short)"
                )
        else:
            print(
                f"table5_speedup_{SPEEDUP_JOBS}jobs: skipped "
                f"({cores} cores < {SPEEDUP_JOBS})"
            )

    if args.update:
        envelope.with_metrics(data).dump(BENCH_FILE)
        print(f"updated {BENCH_FILE}")
        return 0
    if failures:
        print("\nPERFORMANCE REGRESSION:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nsubstrate performance within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
