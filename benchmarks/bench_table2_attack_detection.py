"""Table 2 — every attack is caught by its stated verification.

=========================  ============  ==========================
attack                      type          detection (paper)
=========================  ============  ==========================
fanout decrease             quantitative  direct cross-check
partial propose             causality     direct cross-check
partial serve               quantitative  direct verification
decreased gossip period     quantitative  cross-check + local audit
biased partner selection    entropy       local audit + a-posteriori
=========================  ============  ==========================

Each scenario runs a small deployment with exactly one attack active
and asserts that the paper's mechanism (and not pure chance) flags it.
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import record_report
from repro.config import FreeriderDegree, planetlab_params
from repro.core.blames import (
    REASON_FANOUT_DECREASE,
    REASON_INVALID_PROPOSAL,
    REASON_NO_ACK,
    REASON_PARTIAL_SERVE,
)
from repro.experiments.cluster import ClusterConfig, SimCluster


def _cluster(**overrides):
    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=40, fanout=4, source_fanout=4, chunk_size=2048)
    lifting = replace(lifting, managers=5, history_periods=12, gamma=4.8)
    defaults = dict(gossip=gossip, lifting=lifting, seed=77, loss_rate=0.0, compensation=0.0)
    defaults.update(overrides)
    return SimCluster(ClusterConfig(**defaults))


def _freerider_blame_share(cluster, reason):
    """Fraction of `reason` blame value emitted against freeriders."""
    total, against_freeriders = 0.0, 0.0
    for node in cluster.nodes.values():
        if node.engine is None:
            continue
        value = node.engine.blames_by_reason.get(reason, 0.0)
        total += value
    # Blame totals recorded at managers, split by target role.
    freerider_blames = 0.0
    all_blames = 0.0
    for node in cluster.nodes.values():
        if node.manager is None:
            continue
        for target, record in node.manager.records.items():
            positive = max(record.blame_total, 0.0)
            all_blames += positive
            if target in cluster.freerider_ids:
                freerider_blames += positive
    return total, (freerider_blames / all_blames if all_blames else 0.0)


@pytest.fixture(scope="module")
def table2_report():
    rows = []

    # (i) fanout decrease → direct cross-check (f - f̂ blames).
    c = _cluster(freerider_fraction=0.25, freerider_degree=FreeriderDegree(0.5, 0, 0))
    c.run(until=10.0)
    value, share = _freerider_blame_share(c, REASON_FANOUT_DECREASE)
    rows.append(("fanout decrease", "direct cross-check", value > 0 and share > 0.8, share))

    # (ii) partial propose → direct cross-check (invalid proposal / no ack).
    c = _cluster(freerider_fraction=0.25, freerider_degree=FreeriderDegree(0, 0.5, 0))
    c.run(until=10.0)
    v1, share = _freerider_blame_share(c, REASON_NO_ACK)
    v2, _ = _freerider_blame_share(c, REASON_INVALID_PROPOSAL)
    rows.append(("partial propose", "direct cross-check", (v1 + v2) > 0 and share > 0.8, share))

    # (iii) partial serve → direct verification.
    c = _cluster(freerider_fraction=0.25, freerider_degree=FreeriderDegree(0, 0, 0.5))
    c.run(until=10.0)
    value, share = _freerider_blame_share(c, REASON_PARTIAL_SERVE)
    rows.append(("partial serve", "direct verification", value > 0 and share > 0.8, share))

    # (iv) decreased gossip period → local audit period count.
    c = _cluster(
        freerider_fraction=0.25,
        freerider_degree=FreeriderDegree(0, 0, 0),
        period_stride=3,
    )
    c.run(until=10.0)
    target = next(iter(c.freerider_ids))
    auditor = c.nodes[next(n for n in c.node_ids if n not in c.freerider_ids)]
    results = []
    auditor.auditor.start(target, on_complete=results.append)
    c.sim.run(until=c.sim.now + 15.0)
    caught_period = bool(results) and not results[0].passed_period_count
    rows.append(("decreased gossip period", "local audit (period count)", caught_period, 1.0))

    # (v) biased partner selection → local audit entropy.
    c = _cluster(
        freerider_fraction=0.25,
        freerider_degree=FreeriderDegree(0, 0, 0),
        colluding=True,
        collusion_bias=0.9,
    )
    c.run(until=10.0)
    target = next(iter(c.freerider_ids))
    auditor = c.nodes[next(n for n in c.node_ids if n not in c.freerider_ids)]
    results = []
    auditor.auditor.start(target, on_complete=results.append)
    c.sim.run(until=c.sim.now + 15.0)
    caught_entropy = bool(results) and not results[0].passed_fanout
    rows.append(("biased partner selection", "local audit (entropy)", caught_entropy, 1.0))

    lines = ["attack                     detection mechanism            caught  blame-share@freeriders"]
    for attack, mechanism, caught, share in rows:
        lines.append(f"{attack:26s} {mechanism:30s} {str(caught):6s} {share:.2f}")
    record_report("table2_attack_detection", "\n".join(lines))
    return rows


def test_table2_every_attack_caught(table2_report, benchmark):
    benchmark(lambda: sum(1 for _a, _m, caught, _s in table2_report if caught))
    for attack, mechanism, caught, _share in table2_report:
        assert caught, f"{attack} was not caught by {mechanism}"
