"""Figure 10 — impact of message losses on honest scores.

Paper reference: n = 10,000 honest nodes, one gossip period, p_dcc = 1,
p_l = 7 %, f = 12, |R| = 4; scores compensated by -b̃ = -72.95; observed
mean < 0.01, experimental σ(b) = 25.6.
"""

import numpy as np
import pytest

from benchmarks.conftest import full_scale, record_report
from repro.config import analysis_params
from repro.experiments.fig10 import run_fig10
from repro.mc.blame_model import BlameModel
from repro.util.rng import make_generator


@pytest.fixture(scope="module")
def fig10_result():
    n = 10_000 if not full_scale() else 50_000
    result = run_fig10(n=n, seed=11)
    lines = [
        f"n={n} honest nodes, one gossip period, p_dcc=1, p_l=7%, f=12, |R|=4",
        f"compensation -b~            paper: 72.95   measured: {result.compensation:.2f}",
        f"mean compensated score      paper: ~0      measured: {result.mean:+.3f}",
        f"stddev of scores sigma(b)   paper: 25.6    measured: {result.stddev:.2f}",
        "",
        "score pdf (fraction of nodes per bin):",
    ]
    centers, fractions = result.pdf(bins=20)
    for center, fraction in zip(centers, fractions):
        bar = "#" * int(400 * fraction)
        lines.append(f"  {center:8.1f}  {fraction:6.4f} {bar}")
    record_report("fig10_wrongful_blames", "\n".join(lines))
    return result


def test_fig10_compensation_centers_scores(fig10_result, benchmark):
    gossip, lifting = analysis_params()
    model = BlameModel(gossip.fanout, gossip.request_size, lifting.p_reception)
    rng = make_generator(99, "bench-fig10")

    benchmark(lambda: model.sample_period_blames(rng, 10_000))

    assert abs(fig10_result.mean) < 0.75
    assert 15.0 < fig10_result.stddev < 28.0
    assert fig10_result.compensation == pytest.approx(72.95, abs=0.01)
