#!/usr/bin/env python
"""Load-generator baseline: where is this machine's knee?

Runs the ``loadgen`` scenario (open-loop stepped-rate sweep against a
live loopback deployment, see ``docs/LOADGEN.md``) and prints the
per-phase latency table.  Two extra modes:

* ``--smoke`` — a tiny timeout-friendly sweep for CI: asserts that the
  report parses (schema tag, knee payload, per-stage percentiles all
  present and JSON-safe) and that the invariant monitor saw zero
  violations while the node was under load.  It makes **no** claim
  about where the knee is — shared runners are too noisy for that.
* ``--record`` — a longer ladder on an idle machine; writes the
  detected knee and the per-stage p50/p99 at the knee into
  ``benchmarks/BENCH_loadgen.json`` as the comparison baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_loadgen.py           # default sweep
    PYTHONPATH=src python benchmarks/bench_loadgen.py --smoke   # CI gate
    PYTHONPATH=src python benchmarks/bench_loadgen.py --record  # refresh baseline

Every run also writes the rendered table to
``benchmarks/results/loadgen_report.txt`` for CI artifact upload.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

BENCH_FILE = pathlib.Path(__file__).resolve().parent / "BENCH_loadgen.json"
RESULTS_FILE = pathlib.Path(__file__).resolve().parent / "results" / "loadgen_report.txt"

#: CI smoke: two gentle rungs, far below any plausible knee.
SMOKE = dict(n=6, rate=300.0, step=300.0, steps=2, step_duration=0.5)

#: Baseline ladder: climbs until a loopback deployment saturates.
RECORD = dict(n=8, rate=4000.0, step=4000.0, steps=5, step_duration=1.0)


def check_report(result) -> None:
    """The smoke contract: the report parses and the run stayed clean."""
    metrics = result.metrics
    load = metrics["load"]
    assert load["schema"] == "repro.loadgen_report/1", load.get("schema")
    assert load["resilience"]["schema"] == "repro.resilience_snapshot/1"
    knee = load["knee"]
    assert isinstance(knee["saturated"], bool)
    assert len(knee["offered"]) == len(knee["goodput"]) == len(knee["ratios"])
    for stage in ("ingress", "queue", "dispatch", "sojourn"):
        p99 = metrics["stage_p99"][stage]
        assert p99 == p99 and p99 >= 0.0, (stage, p99)  # present, not NaN
    assert metrics["frames_offered"] > 0
    assert metrics["invariant_violations"] == 0, metrics["invariant_violations"]
    json.dumps(load)  # the whole payload must be JSON-safe


def record_baseline(result) -> None:
    metrics = result.metrics
    load = metrics["load"]
    payload = {
        "_comment": (
            "Loadgen knee baseline; refresh on an idle machine with "
            "`make bench-loadgen`. See docs/LOADGEN.md."
        ),
        "params": result.params,
        "knee": load["knee"],
        "overall_stage_p50": metrics["stage_p50"],
        "overall_stage_p99": metrics["stage_p99"],
        "ingress_high_water": metrics["ingress_high_water"],
        "ingress_dropped": metrics["ingress_dropped"],
        "provenance": result.provenance,
    }
    BENCH_FILE.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"recorded loadgen baseline in {BENCH_FILE}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny CI sweep; parse + invariant gate only")
    parser.add_argument("--record", action="store_true", help="long ladder; write BENCH_loadgen.json")
    parser.add_argument("--n", type=int, default=None, help="override deployment size")
    parser.add_argument("--steps", type=int, default=None, help="override ladder length")
    args = parser.parse_args(argv)

    from repro.scenarios import get, run_scenario

    overrides = dict(SMOKE if args.smoke else RECORD)
    if args.n is not None:
        overrides["n"] = args.n
    if args.steps is not None:
        overrides["steps"] = args.steps

    spec = get("loadgen")
    result = run_scenario("loadgen", **overrides)
    rendered = spec.render(result)
    print(rendered)
    RESULTS_FILE.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_FILE.write_text(rendered + "\n", encoding="utf-8")

    check_report(result)
    if args.record:
        record_baseline(result)
    print("loadgen report ok", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
