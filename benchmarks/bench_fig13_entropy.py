"""Figure 13 — entropy of nodes' histories under full membership.

Paper reference: n_h·f = 600 partner picks at n = 10,000; fanout
entropy observed in [9.11, 9.21] (max log2 600 = 9.23), fanin in
[8.98, 9.34]; γ = 8.95 gives negligible false expulsions.
"""

import numpy as np
import pytest

from benchmarks.conftest import record_report
from repro.experiments.fig13 import run_fig13
from repro.mc.entropy import sample_fanout_entropies
from repro.util.rng import make_generator


@pytest.fixture(scope="module")
def fig13_result():
    result = run_fig13(n=10_000, seed=19)
    fo_lo, fo_hi = result.fanout_range
    fi_lo, fi_hi = result.fanin_range
    lines = [
        "history entropies at n=10,000, n_h f = 600, full membership",
        f"max fanout entropy log2(600):  paper 9.23   measured {result.max_entropy:.2f}",
        f"fanout entropy range:          paper [9.11, 9.21]   measured [{fo_lo:.2f}, {fo_hi:.2f}]",
        f"fanin  entropy range:          paper [8.98, 9.34]   measured [{fi_lo:.2f}, {fi_hi:.2f}]",
        f"fanout histories below gamma=8.95: {result.fanout_false_expulsions:.4%}  (paper: negligible)",
        f"fanin  histories below gamma=8.95: {result.fanin_false_expulsions:.4%}  (paper: negligible)",
        f"mean fanin size: {result.fanin_sizes.mean():.1f}  (paper: n_h f = 600 on average)",
    ]
    record_report("fig13_entropy", "\n".join(lines))
    return result


def test_fig13_entropy_distributions(fig13_result, benchmark):
    rng = make_generator(5, "bench-fig13")
    benchmark(lambda: sample_fanout_entropies(rng, 10_000, 600, n_samples=500))

    fo_lo, fo_hi = fig13_result.fanout_range
    assert fo_lo == pytest.approx(9.11, abs=0.03)
    assert fo_hi == pytest.approx(9.21, abs=0.03)
    fi_lo, fi_hi = fig13_result.fanin_range
    assert fi_lo == pytest.approx(8.98, abs=0.08)
    assert fi_hi == pytest.approx(9.34, abs=0.08)
    assert fig13_result.fanout_false_expulsions == 0.0
    assert fig13_result.fanin_false_expulsions < 0.002
    assert fig13_result.fanin_sizes.mean() == pytest.approx(600, rel=0.02)
