"""Table 3 — message overhead of the verifications.

Paper reference (per node per gossip period): direct verification sends
0 messages; cross-checking costs O(p_dcc·f²) confirms for the verifier,
O(p_dcc·f) acks around the inspected node and O(p_dcc·f²) responses per
witness; blames are bounded by O(M·f).  The protocol itself sends
f(2+|R|).  We measure actual per-node-per-period counts and check the
O(f²) scaling of the confirm traffic.
"""

import math

import pytest

from benchmarks.conftest import full_scale, record_report
from repro.experiments.table3 import run_table3


@pytest.fixture(scope="module")
def table3_result():
    n = 200 if full_scale() else 80
    result = run_table3(n=n, duration=12.0, fanout_sweep=(4, 6, 8))
    model = result.model
    lines = [
        f"per-node per-period message counts (n={n}, f=7, |R|=4, p_dcc=1, M=25)",
        "",
        "kind               measured   model-bound  note",
        f"Propose            {result.row('Propose'):8.2f}   {model.proposals:8.1f}     f proposals",
        f"Request            {result.row('Request'):8.2f}   {model.requests:8.1f}     <= f (dedup)",
        f"Serve              {result.row('Serve'):8.2f}   {model.serves:8.1f}     <= f|R|",
        f"Ack                {result.row('Ack'):8.2f}   {model.acks:8.1f}     <= f",
        f"Confirm            {result.row('Confirm'):8.2f}   {model.confirms_sent:8.1f}     <= p_dcc f^2",
        f"ConfirmResponse    {result.row('ConfirmResponse'):8.2f}   {model.confirm_responses_sent:8.1f}     <= p_dcc f^2",
        f"Blame              {result.row('Blame'):8.2f}   {model.max_blame_messages:8.1f}     <= (1+p_dcc) M f",
        "",
        "fanout sweep of Confirm traffic (expect superlinear, ~O(f^2)):",
    ]
    for fanout, confirms in result.fanout_sweep:
        lines.append(f"  f={fanout}: {confirms:7.2f} confirms/node/period")
    lines.append(
        f"log-log slope: {result.confirm_scaling_slope:.2f} (paper model: 2.0; "
        "interaction saturation flattens it slightly)"
    )
    record_report("table3_message_overhead", "\n".join(lines))
    return result


def test_table3_counts_within_model_bounds(table3_result, benchmark):
    benchmark(lambda: table3_result.row("Confirm"))
    model = table3_result.model
    assert table3_result.row("Confirm") <= model.confirms_sent * 1.1
    assert table3_result.row("ConfirmResponse") <= model.confirm_responses_sent * 1.1
    assert table3_result.row("Ack") <= model.acks * 1.1
    assert table3_result.row("Blame") <= model.max_blame_messages
    assert table3_result.row("Serve") <= model.serves * 1.5
    # Verification traffic exists at all.
    assert table3_result.row("Confirm") > 1.0


def test_table3_confirms_scale_superlinearly(table3_result, benchmark):
    benchmark(lambda: table3_result.confirm_scaling_slope)
    assert 1.2 <= table3_result.confirm_scaling_slope <= 2.5
