#!/usr/bin/env python
"""The large-n scalability curve: s of wall clock per simulated second vs n.

Runs :func:`repro.experiments.scaling.run_scaling` over a size sweep and
prints (and optionally records) the curve, now including the
tracemalloc peak over construction + warm-up per point — the MiB/node
column is the struct-of-arrays acceptance curve (it must *fall* as n
grows).  This is the benchmark behind the "Scaling with n" section of
``docs/PERFORMANCE.md`` and the ``scaling`` section of
``benchmarks/BENCH_substrate.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling_curve.py                 # 100/300/1000
    PYTHONPATH=src python benchmarks/bench_scaling_curve.py --include-2000  # opt-in n=2000
    PYTHONPATH=src python benchmarks/bench_scaling_curve.py --include-10000 # opt-in n=10000
    PYTHONPATH=src python benchmarks/bench_scaling_curve.py --smoke         # CI sweep to n=2000
    PYTHONPATH=src python benchmarks/bench_scaling_curve.py --record        # write the JSON

``--smoke`` runs a short sweep through n=2000 (fractions of a timed
simulated second per point) that asserts the sweep machinery — and the
pooled-state layout at a four-digit size — end to end without
benchmark-grade load; CI runs it on every push.  Setting
``REPRO_BENCH_FULL=1`` in the environment is equivalent to passing
``--include-10000`` (CI's opt-in full-curve job uses it).  ``--record``
rewrites the ``scaling`` section of ``BENCH_substrate.json`` from the
measured sweep; do that on an idle machine only (and prefer
``--jobs 1``, the default, so the points do not contend for cores).

Every run also writes the rendered table to
``benchmarks/results/scaling_curve.txt`` so CI can upload it as an
artifact.
"""

from __future__ import annotations

import argparse
import math
import os
import pathlib
import sys

BENCH_FILE = pathlib.Path(__file__).resolve().parent / "BENCH_substrate.json"
RESULTS_FILE = pathlib.Path(__file__).resolve().parent / "results" / "scaling_curve.txt"

SMOKE_SIZES = (40, 200, 2000)
FULL_SIZES = (100, 300, 1000)


def render_table(result) -> str:
    lines = ["     n  s/sim-s   events/s  peak MiB  KiB/node"]
    for point in result.points:
        lines.append(
            f"{point.n:6d}  {point.s_per_sim_second:7.3f}"
            f"  {point.events_per_wall_second:9,.0f}"
            f"  {point.peak_mem_mib:8.1f}"
            f"  {point.peak_mem_kib_per_node:8.1f}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=None, help="override the size sweep")
    parser.add_argument("--smoke", action="store_true", help="short CI sweep through n=2000")
    parser.add_argument("--include-2000", action="store_true", help="opt-in n=2000 point (slow)")
    parser.add_argument(
        "--include-10000",
        action="store_true",
        help="opt-in n=10000 point (slow; REPRO_BENCH_FULL=1 implies it)",
    )
    parser.add_argument("--duration", type=float, default=None, help="timed simulated seconds per size")
    parser.add_argument("--warmup", type=float, default=None, help="warm-up simulated seconds per size")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (keep 1 for baselines)")
    parser.add_argument("--record", action="store_true", help="write the curve into BENCH_substrate.json")
    args = parser.parse_args(argv)

    from repro.experiments.scaling import run_scaling

    if args.smoke:
        sizes = list(args.sizes or SMOKE_SIZES)
        duration = args.duration if args.duration is not None else 0.5
        warmup = args.warmup if args.warmup is not None else 0.25
    else:
        sizes = list(args.sizes or FULL_SIZES)
        duration = args.duration if args.duration is not None else 3.0
        warmup = args.warmup if args.warmup is not None else 2.0
    if args.include_2000 and 2000 not in sizes:
        sizes.append(2000)
    if (args.include_10000 or os.environ.get("REPRO_BENCH_FULL") == "1") and 10000 not in sizes:
        sizes.append(10000)

    result = run_scaling(
        sizes=sizes, duration=duration, warmup=warmup, seed=args.seed, jobs=args.jobs
    )
    table = render_table(result)
    print(table)
    RESULTS_FILE.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_FILE.write_text(table + "\n")

    for point in result.points:
        sps = point.s_per_sim_second
        if not (math.isfinite(sps) and sps > 0):
            print(f"FAIL: nonsense timing for n={point.n}: {sps}", file=sys.stderr)
            return 1
        if point.events <= 0:
            print(f"FAIL: no events fired for n={point.n}", file=sys.stderr)
            return 1
    # The memory curve is the point of the pooled layout: per-node peak
    # footprint must not grow with n (jobs>1 workers inherit tracing in
    # some pools and report 0.0 — only enforce on traced points).
    traced = [p for p in result.points if p.peak_mem_mib > 0.0]
    if len(traced) >= 2:
        first, last = traced[0], traced[-1]
        if last.n > first.n and last.peak_mem_kib_per_node > first.peak_mem_kib_per_node:
            print(
                f"FAIL: peak memory per node grew with n "
                f"({first.n}: {first.peak_mem_kib_per_node:.1f} KiB/node -> "
                f"{last.n}: {last.peak_mem_kib_per_node:.1f} KiB/node)",
                file=sys.stderr,
            )
            return 1

    if args.record:
        from repro.scenarios import RunResult

        envelope = RunResult.load(BENCH_FILE)
        data = dict(envelope.metrics)
        data["scaling"] = {
            "note": (
                "Large-n scalability curve (benchmarks/bench_scaling_curve.py, "
                "jobs=1 on an idle machine): wall-clock seconds per simulated "
                "second of a warm PlanetLab-style deployment (fanout 5, 10 "
                "managers, seed below), per system size, plus the tracemalloc "
                "peak over construction + warm-up. The per-node cost is what "
                "the flattened hot paths keep roughly constant, and the "
                "per-node peak memory is what the struct-of-arrays layout "
                "keeps falling; refresh together with the 'current' kernels."
            ),
            **result.as_dict(),
        }
        envelope.with_metrics(data).dump(BENCH_FILE)
        print(f"recorded scaling curve in {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
