#!/usr/bin/env python
"""The large-n scalability curve: s of wall clock per simulated second vs n.

Runs :func:`repro.experiments.scaling.run_scaling` over a size sweep and
prints (and optionally records) the curve.  This is the benchmark behind
the "Scaling with n" section of ``docs/PERFORMANCE.md`` and the
``scaling`` section of ``benchmarks/BENCH_substrate.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling_curve.py                # 100/300/1000
    PYTHONPATH=src python benchmarks/bench_scaling_curve.py --include-2000 # opt-in n=2000
    PYTHONPATH=src python benchmarks/bench_scaling_curve.py --smoke       # tiny CI sweep
    PYTHONPATH=src python benchmarks/bench_scaling_curve.py --record      # write the JSON

``--smoke`` runs a tiny sweep (n=40/80, one timed simulated second) that
asserts the sweep machinery end to end without meaningful load — CI runs
it on every push.  ``--record`` rewrites the ``scaling`` section of
``BENCH_substrate.json`` from the measured full sweep; do that on an
idle machine only (and prefer ``--jobs 1``, the default, so the points
do not contend for cores).
"""

from __future__ import annotations

import argparse
import math
import pathlib
import sys

BENCH_FILE = pathlib.Path(__file__).resolve().parent / "BENCH_substrate.json"

SMOKE_SIZES = (40, 80)
FULL_SIZES = (100, 300, 1000)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=None, help="override the size sweep")
    parser.add_argument("--smoke", action="store_true", help="tiny fast sweep (CI)")
    parser.add_argument("--include-2000", action="store_true", help="opt-in n=2000 point (slow)")
    parser.add_argument("--duration", type=float, default=None, help="timed simulated seconds per size")
    parser.add_argument("--warmup", type=float, default=None, help="warm-up simulated seconds per size")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (keep 1 for baselines)")
    parser.add_argument("--record", action="store_true", help="write the curve into BENCH_substrate.json")
    args = parser.parse_args(argv)

    from repro.experiments.scaling import run_scaling

    if args.smoke:
        sizes = list(args.sizes or SMOKE_SIZES)
        duration = args.duration if args.duration is not None else 1.0
        warmup = args.warmup if args.warmup is not None else 0.5
    else:
        sizes = list(args.sizes or FULL_SIZES)
        duration = args.duration if args.duration is not None else 3.0
        warmup = args.warmup if args.warmup is not None else 2.0
    if args.include_2000 and 2000 not in sizes:
        sizes.append(2000)

    result = run_scaling(
        sizes=sizes, duration=duration, warmup=warmup, seed=args.seed, jobs=args.jobs
    )
    print("     n  s/sim-s   events/s")
    for n, sps, eps in result.rows():
        print(f"{n:6d}  {sps:7.3f}  {eps:9,.0f}")

    for point in result.points:
        sps = point.s_per_sim_second
        if not (math.isfinite(sps) and sps > 0):
            print(f"FAIL: nonsense timing for n={point.n}: {sps}", file=sys.stderr)
            return 1
        if point.events <= 0:
            print(f"FAIL: no events fired for n={point.n}", file=sys.stderr)
            return 1

    if args.record:
        from repro.scenarios import RunResult

        envelope = RunResult.load(BENCH_FILE)
        data = dict(envelope.metrics)
        data["scaling"] = {
            "note": (
                "Large-n scalability curve (benchmarks/bench_scaling_curve.py, "
                "jobs=1 on an idle machine): wall-clock seconds per simulated "
                "second of a warm PlanetLab-style deployment (fanout 5, 10 "
                "managers, seed below), per system size. The per-node cost is "
                "what the flattened hot paths keep roughly constant; refresh "
                "together with the 'current' kernels."
            ),
            **result.as_dict(),
        }
        envelope.with_metrics(data).dump(BENCH_FILE)
        print(f"recorded scaling curve in {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
