"""Table 1 — blame values per attack (conformance).

=====================================  =============================
attack                                  blame value
=====================================  =============================
fanout decrease (f̂ < f)                 f - f̂ from each verifier
partial propose                         1 per invalid proposal
partial serve (|S| < |R|)               f·(|R|-|S|)/|R| from receiver
=====================================  =============================
"""

import pytest

from benchmarks.conftest import record_report
from repro.core.blames import (
    fanout_decrease_blame,
    no_ack_blame,
    partial_serve_blame,
    witness_contradiction_blame,
)


@pytest.fixture(scope="module")
def table1_rows():
    f = 7
    rows = [
        ("fanout decrease (f=7, f̂=6)", "f - f̂ = 1", fanout_decrease_blame(f, 6)),
        ("fanout decrease (f=7, f̂=4)", "f - f̂ = 3", fanout_decrease_blame(f, 4)),
        ("partial propose (per witness)", "1", witness_contradiction_blame()),
        ("missing ack / invalid proposal", "f = 7", no_ack_blame(f)),
        ("partial serve (|R|=4, |S|=3)", "f/|R| = 1.75", partial_serve_blame(f, 4, 3)),
        ("partial serve (|R|=4, |S|=0)", "f = 7", partial_serve_blame(f, 4, 0)),
    ]
    lines = ["attack                             paper value     measured"]
    for attack, paper, measured in rows:
        lines.append(f"{attack:34s} {paper:15s} {measured:.2f}")
    record_report("table1_blame_conformance", "\n".join(lines))
    return rows


def test_table1_blame_values(table1_rows, benchmark):
    benchmark(lambda: partial_serve_blame(7, 4, 2))
    expected = [1.0, 3.0, 1.0, 7.0, 1.75, 7.0]
    assert [m for _a, _p, m in table1_rows] == pytest.approx(expected)
