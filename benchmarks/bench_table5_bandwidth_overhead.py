"""Table 5 — practical bandwidth overhead of cross-checking + blaming.

Paper reference (300 PlanetLab nodes)::

    p_dcc              0        0.5      1
    674 kbps         1.07 %   4.53 %   8.01 %
    1082 kbps        0.69 %   3.51 %   5.04 %
    2036 kbps        0.38 %   1.69 %   2.76 %

Structural facts that must reproduce: overhead grows with p_dcc but is
non-zero at p_dcc = 0 (acks are always sent), and *decreases* with the
stream rate (verification traffic scales with the gossip rate, not the
payload).  Our simulator's wrongful-blame traffic is heavier than the
paper's deployment, so absolute percentages run higher by a factor ≈ 2.
"""

import pytest

from benchmarks.conftest import full_scale, record_report
from repro.experiments.table5 import PAPER_OVERHEAD_PERCENT, run_table5


@pytest.fixture(scope="module")
def table5_result():
    n = 150 if full_scale() else 80
    duration = 15.0 if full_scale() else 10.0
    result = run_table5(n=n, duration=duration)
    lines = [
        f"cross-checking and blaming overhead (n={n}, {duration:.0f}s)",
        "",
        "  rate(kbps)  p_dcc   measured   paper",
    ]
    for rate, p_dcc, measured, paper in result.rows():
        lines.append(f"  {rate:9.0f}   {p_dcc:4.1f}   {measured:6.2f}%   {paper:5.2f}%")
    record_report("table5_bandwidth_overhead", "\n".join(lines))
    return result


def test_table5_overhead_shape(table5_result, benchmark):
    benchmark(lambda: table5_result.percent(674.0, 1.0))

    for rate in (674.0, 1082.0, 2036.0):
        # Monotone in p_dcc; non-zero at p_dcc = 0.
        p0 = table5_result.percent(rate, 0.0)
        p5 = table5_result.percent(rate, 0.5)
        p1 = table5_result.percent(rate, 1.0)
        assert 0 < p0 < p5 < p1
    for p_dcc in (0.0, 0.5, 1.0):
        # Overhead decreases with the stream rate.
        assert (
            table5_result.percent(674.0, p_dcc)
            > table5_result.percent(1082.0, p_dcc)
            > table5_result.percent(2036.0, p_dcc)
        )
    # Within ~3x of the paper's absolute numbers across the grid.
    for (rate, p_dcc), paper in PAPER_OVERHEAD_PERCENT.items():
        measured = table5_result.percent(rate, p_dcc)
        assert measured < 3.5 * paper + 1.5
