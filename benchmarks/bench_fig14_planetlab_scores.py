"""Figure 14 — score CDFs on the simulated PlanetLab deployment.

Paper reference (300 nodes, 10 % freeriders Δ=(1/7, 0.1, 0.1), f=7,
M=25, ~4 % loss): at 30 s with p_dcc = 1 the threshold η = -9.75
expels 86 % of freeriders and 12 % of honest nodes (mostly
poorly-connected ones); p_dcc = 0.5 is slower but not twice as slow —
its 35 s matches the 30 s of p_dcc = 1.

Our simulator's blame magnitudes sit lower than the PlanetLab
deployment's, so the paper's absolute η under-detects here; we report
both the paper's η and the threshold derived from the paper's own
calibration rule (β ≤ 1 % in an honest deployment, §6.3.1) — the
latter reproduces the detection/false-positive landmark.
"""

import pytest

from benchmarks.conftest import full_scale, record_report
from repro.experiments.fig14 import run_fig14


@pytest.fixture(scope="module")
def fig14_result():
    n = 300 if full_scale() else 120
    result = run_fig14(n=n, times=(25.0, 30.0, 35.0), p_dcc_values=(1.0, 0.5), seed=23)
    lines = [
        f"n={n}, 10% freeriders (delta1=1/7, delta2=0.1, delta3=0.1), 10% degraded honest",
        f"calibrated compensation b~ = {result.compensation:.2f}; "
        f"calibrated eta (beta<=1%) = {result.eta_calibrated:.2f}; paper eta = {result.eta:.2f}",
        "",
        " p_dcc  t(s)   alpha@eta_paper beta@eta_paper   alpha@eta_cal beta@eta_cal  degradedFP%",
    ]
    for p_dcc in (1.0, 0.5):
        for t in (25.0, 30.0, 35.0):
            paper = result.report(p_dcc, t)
            cal = result.report_at(p_dcc, t, result.eta_calibrated)
            share = result.degraded_false_positive_share(p_dcc, t)
            lines.append(
                f"  {p_dcc:3.1f}  {t:4.0f}      {paper.detection:6.2f}   {paper.false_positives:6.2f}"
                f"          {cal.detection:6.2f}   {cal.false_positives:6.2f}      {share:6.0%}"
            )
    lines += [
        "",
        "paper landmark (30s, p_dcc=1): alpha=0.86, beta=0.12, FPs are poor nodes",
        "paper landmark: detection at p_dcc=0.5/35s comparable to p_dcc=1/30s",
    ]
    record_report("fig14_planetlab_scores", "\n".join(lines))
    return result


def test_fig14_detection_landmarks(fig14_result, benchmark):
    benchmark(lambda: fig14_result.report_at(1.0, 30.0, fig14_result.eta_calibrated))

    cal_30 = fig14_result.report_at(1.0, 30.0, fig14_result.eta_calibrated)
    # Paper: 86 % detection / 12 % false positives at 30 s.
    assert cal_30.detection >= 0.7
    assert cal_30.false_positives <= 0.2
    # False positives are overwhelmingly the degraded (poor) nodes.
    assert fig14_result.degraded_false_positive_share(1.0, 30.0) >= 0.7


def test_fig14_pdcc_half_is_slower_but_not_twice(fig14_result, benchmark):
    benchmark(lambda: fig14_result.report_at(0.5, 35.0, fig14_result.eta_calibrated))
    eta = fig14_result.eta_calibrated
    full_30 = fig14_result.report_at(1.0, 30.0, eta).detection
    half_30 = fig14_result.report_at(0.5, 30.0, eta).detection
    half_35 = fig14_result.report_at(0.5, 35.0, eta).detection
    assert half_30 <= full_30 + 0.05
    # "the detection after only 35 seconds with p_dcc = 0.5 is comparable
    # with the detection after 30 seconds with p_dcc = 1".
    assert half_35 >= full_30 - 0.25


def test_fig14_scores_separate_over_time(fig14_result, benchmark):
    import numpy as np

    benchmark(lambda: fig14_result.snapshots[(1.0, 30.0)])

    def gap(t):
        scores = fig14_result.snapshots[(1.0, t)]
        honest = [
            s
            for n, s in scores.items()
            if n not in fig14_result.freerider_ids and n not in fig14_result.degraded_ids
        ]
        freeriders = [s for n, s in scores.items() if n in fig14_result.freerider_ids]
        return float(np.mean(honest) - np.mean(freeriders))

    # "the gap between the two cdfs widens over time" (§7.3).
    assert gap(35.0) >= gap(25.0) - 0.5
    assert gap(30.0) > 0
