"""Parallel experiment orchestration: wall-clock scaling and equivalence.

Not a paper artefact — this guards the process-pool fan-out layer
(:mod:`repro.runtime.parallel`) that every ``run_*`` experiment uses via
its ``jobs=`` parameter.  Two properties are measured:

* **Equivalence** — fanning a job list out must reproduce the serial
  results byte for byte (the determinism contract; also pinned by
  ``tests/experiments/test_parallel_equivalence.py``).
* **Scaling** — on a multi-core machine, Table 5's six-cell grid with
  ``jobs=4`` must beat ``jobs=1`` by ≥ 2.5x (the ISSUE 2 acceptance
  target; asserted only when ≥ 4 cores are available, reported
  informationally otherwise).

``scripts/check_bench_regression.py`` re-times the serial grid (and,
on ≥ 4-core machines, the speedup) against the baselines recorded in
``benchmarks/BENCH_substrate.json``.
"""

import os
import pathlib
import pickle
import time

import pytest

from benchmarks.conftest import full_scale, record_report
from repro.experiments.table5 import run_table5

#: the ISSUE 2 acceptance grid: 2 rates x 3 p_dcc = 6 independent cells.
#: Mirrored (deliberately, with the same values) by GRID_KWARGS in
#: scripts/check_bench_regression.py, which must stay dependency-light.
SIX_CELL_GRID = dict(
    seed=31,
    rates_kbps=(674.0, 1082.0),
    p_dcc_values=(0.0, 0.5, 1.0),
)
SPEEDUP_JOBS = 4
#: single source of truth for the acceptance bar: the recorded target in
#: BENCH_substrate.json (also read by scripts/check_bench_regression.py).
_BENCH_FILE = pathlib.Path(__file__).parent / "BENCH_substrate.json"


def _speedup_target() -> float:
    from repro.scenarios import RunResult

    parallel = RunResult.load(_BENCH_FILE).metrics.get("parallel", {})
    return float(parallel.get("table5_speedup_4jobs_target", 2.5))


SPEEDUP_TARGET = _speedup_target()
#: floor asserted on any >=4-vCPU machine: catches "fan-out silently
#: serialised" without flaking on shared runners where 4 logical CPUs
#: may be 2 physical cores.  The full target is asserted only with
#: REPRO_BENCH_STRICT=1 (an idle machine with 4 real cores).
SPEEDUP_FLOOR = 1.5


def _grid_kwargs():
    scale = dict(n=100, duration=8.0) if full_scale() else dict(n=50, duration=3.0)
    return {**SIX_CELL_GRID, **scale}


@pytest.fixture(scope="module")
def parallel_measurements():
    kwargs = _grid_kwargs()
    start = time.perf_counter()
    serial = run_table5(jobs=1, **kwargs)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    fanned = run_table5(jobs=SPEEDUP_JOBS, **kwargs)
    parallel_s = time.perf_counter() - start

    identical = pickle.dumps(serial) == pickle.dumps(fanned)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cores = os.cpu_count() or 1
    lines = [
        f"table5 six-cell grid (n={kwargs['n']}, {kwargs['duration']:.0f}s sim), "
        f"{cores} cores available",
        "",
        f"  jobs=1:             {serial_s:7.2f}s wall clock",
        f"  jobs={SPEEDUP_JOBS}:             {parallel_s:7.2f}s wall clock",
        f"  speedup:            {speedup:7.2f}x "
        f"(target >={SPEEDUP_TARGET}x on a 4-core machine)",
        f"  byte-identical:     {identical}",
    ]
    record_report("parallel_experiments", "\n".join(lines))
    return dict(
        serial=serial,
        fanned=fanned,
        serial_s=serial_s,
        parallel_s=parallel_s,
        speedup=speedup,
        identical=identical,
        cores=cores,
    )


def test_parallel_grid_byte_identical(parallel_measurements, benchmark):
    benchmark(lambda: pickle.dumps(parallel_measurements["serial"]))
    assert parallel_measurements["identical"]


def test_parallel_grid_speedup(parallel_measurements):
    if parallel_measurements["cores"] < SPEEDUP_JOBS:
        pytest.skip(
            f"speedup target needs >= {SPEEDUP_JOBS} cores "
            f"(have {parallel_measurements['cores']}); measured "
            f"{parallel_measurements['speedup']:.2f}x informationally"
        )
    strict = os.environ.get("REPRO_BENCH_STRICT", "") == "1"
    threshold = SPEEDUP_TARGET if strict else SPEEDUP_FLOOR
    assert parallel_measurements["speedup"] >= threshold, (
        f"{parallel_measurements['speedup']:.2f}x < {threshold}x "
        f"({'strict target' if strict else 'shared-runner floor'}; "
        f"target {SPEEDUP_TARGET}x on an idle 4-core machine)"
    )
