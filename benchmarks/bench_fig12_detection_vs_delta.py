"""Figure 12 — detection probability and bandwidth gain vs δ.

Paper landmarks: δ=0.05 → α≈65 %; δ≥0.1 → α>99 %; a 10 % bandwidth
gain (δ≈0.035, FlightPath's rationality threshold) is detected ~50 %
of the time.
"""

import numpy as np
import pytest

from benchmarks.conftest import full_scale, record_report
from repro.experiments.fig12 import run_fig12


@pytest.fixture(scope="module")
def fig12_result():
    samples = 6_000 if full_scale() else 3_000
    result = run_fig12(rounds=50, samples_per_point=samples, seed=17)
    lines = [
        "delta sweep, r=50 periods, eta=-9.75 (analysis parameters)",
        "   delta   detection(alpha)   gain      [paper: alpha(0.05)~0.65, alpha(0.1)>0.99]",
    ]
    for delta, alpha, gain in result.rows():
        lines.append(f"   {delta:5.3f}   {alpha:8.3f}          {gain:5.3f}")
    lines += [
        "",
        f"alpha at delta=0.035 (10% gain): measured {result.detection_at(0.035):.2f}  paper ~0.50",
        f"alpha at delta=0.05:             measured {result.detection_at(0.05):.2f}  paper ~0.65",
        f"alpha at delta=0.10:             measured {result.detection_at(0.10):.2f}  paper >0.99",
        f"delta for 10% gain:              measured {result.delta_for_gain(0.10):.3f} paper ~0.035",
    ]
    record_report("fig12_detection_vs_delta", "\n".join(lines))
    return result


def test_fig12_detection_curve(fig12_result, benchmark):
    benchmark(lambda: fig12_result.detection_at(0.05))
    # Shape: monotone, moderate in the wise region, saturated past 0.1.
    assert list(fig12_result.detection) == sorted(fig12_result.detection)
    assert 0.1 < fig12_result.detection_at(0.035) < 0.95
    assert fig12_result.detection_at(0.10) > 0.99
    assert fig12_result.delta_for_gain(0.10) == pytest.approx(0.035, abs=0.003)
    # False positives stay bounded at the fixed threshold.
    assert max(fig12_result.false_positives) < 0.01
