"""Eq. 7 / §6.3.2 — the collusion-bias ceiling of the entropy audit.

Paper reference: at γ = 8.95 with a 25-node coalition and a 600-entry
history, a freerider can serve colluders at most p*_m ≈ 21 % of the
time without being caught.  Eq. 7 idealises honest picks as fractional
bin occupancy, so the *achievable* (integer-feasible) ceiling sits a
little lower; we report both and validate the achievable one by
Monte-Carlo against the smartest (round-robin + distinct-honest)
coalition strategy.
"""

import numpy as np
import pytest

from benchmarks.conftest import record_report
from repro.analysis.entropy_analysis import (
    achievable_max_bias,
    collusion_entropy,
    gamma_for_window,
    max_bias_probability,
)
from repro.mc.entropy import biased_fanout_entropies
from repro.util.rng import make_generator


@pytest.fixture(scope="module")
def eq7_report():
    p_star = max_bias_probability(8.95, 25, 600)
    p_achievable = achievable_max_bias(8.95, 25, 600)
    rng = make_generator(3, "bench-eq7")
    below = biased_fanout_entropies(
        rng, 10_000, 600, 200, 25, bias=max(0.0, p_achievable - 0.04), planned=True
    )
    above = biased_fanout_entropies(
        rng, 10_000, 600, 200, 25, bias=min(1.0, p_achievable + 0.08), planned=True
    )
    caught_below = float(np.mean(below < 8.95))
    caught_above = float(np.mean(above < 8.95))
    lines = [
        "entropy-audit collusion ceiling (gamma=8.95, m'=25, n_h f=600)",
        f"p*_m, Eq. 7 (paper's idealised bound):  paper ~0.21   measured {p_star:.3f}",
        f"p*_m, integer-feasible (operational):   {p_achievable:.3f}",
        f"entropy at Eq. 7's p*_m:                {collusion_entropy(p_star, 25, 600):.3f} (= gamma)",
        f"MC: caught at p_m = achievable - 0.04:  {caught_below:.2%} (should be ~0)",
        f"MC: caught at p_m = achievable + 0.08:  {caught_above:.2%} (should be ~1)",
        "",
        "coalition size sweep (Eq. 7 ceiling at gamma=8.95):",
    ]
    for m in (5, 10, 25, 50, 100):
        lines.append(f"  m'={m:4d}: p*_m = {max_bias_probability(8.95, m, 600):.3f}")
    lines += [
        "",
        "history-length sweep (gamma scaled to the window, m'=25, f=12):",
    ]
    for n_h in (25, 50, 100, 200):
        history = n_h * 12
        gamma = gamma_for_window(history)
        lines.append(
            f"  n_h={n_h:4d} (window {history:5d}, gamma={gamma:.2f}): "
            f"p*_m = {max_bias_probability(gamma, 25, history):.3f}"
        )
    record_report("eq7_collusion_bias", "\n".join(lines))
    return p_star, p_achievable, caught_below, caught_above


def test_eq7_ceiling(eq7_report, benchmark):
    benchmark(lambda: max_bias_probability(8.95, 25, 600))
    p_star, p_achievable, caught_below, caught_above = eq7_report
    # The paper's number, from the paper's formula.
    assert p_star == pytest.approx(0.21, abs=0.01)
    # The operational ceiling sits below the idealised bound.
    assert 0.10 < p_achievable < p_star
    # Monte-Carlo: the audit separates around the achievable ceiling.
    assert caught_below < 0.05
    assert caught_above > 0.95
