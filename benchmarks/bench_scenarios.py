#!/usr/bin/env python
"""Registry-driven scenario sweep: run everything, validate the schema.

Runs **every registered scenario** (``repro.scenarios.list_scenarios``)
at its declared smoke size and validates that the resulting
``RunResult`` envelope round-trips losslessly through its JSON schema
(``to_json`` → ``from_json`` → identical envelope and identical
serialisation).  This is the drift gate for the Unified Scenario API:
a scenario whose parameters stop resolving, whose reducer breaks, or
whose metrics stop being JSON-safe fails here before it fails a user.

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke     # CI
    PYTHONPATH=src python benchmarks/bench_scenarios.py --only fig1
    PYTHONPATH=src python benchmarks/bench_scenarios.py --skip-tag live
    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke --json-dir out/

The socket-backed scenarios (tag ``live``: the plain ``live`` deployment
and the fault-injecting ``chaos`` run) are part of the sweep like any
other registration; CI runs them in a dedicated timeout-bounded job
(``--only live --only chaos``) so a hung event loop cannot stall the
simulator benchmarks, which skip them via ``--skip-tag live``.

``--smoke`` is accepted for CI-invocation symmetry with the other bench
scripts; smoke sizing is the default (and only) mode — full-scale runs
belong to the per-figure benchmark harness.
"""

from __future__ import annotations

import argparse
import pathlib
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="smoke sizing (the default; kept for CI symmetry)",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="run only these scenarios (repeatable)",
    )
    parser.add_argument(
        "--skip-tag", action="append", default=[], metavar="TAG",
        help="skip scenarios carrying TAG (e.g. 'live' where sockets are "
        "unavailable; repeatable)",
    )
    parser.add_argument(
        "--json-dir", default=None, metavar="DIR",
        help="also dump every RunResult envelope as DIR/<scenario>.json",
    )
    args = parser.parse_args(argv)

    from repro.scenarios import RunResult, list_scenarios, run_scenario

    specs = list_scenarios()
    if args.only:
        wanted = set(args.only)
        unknown = wanted - {spec.name for spec in specs}
        if unknown:
            print(f"FAIL: unknown scenario(s): {sorted(unknown)}", file=sys.stderr)
            return 2
        specs = [spec for spec in specs if spec.name in wanted]

    json_dir = pathlib.Path(args.json_dir) if args.json_dir else None
    if json_dir:
        json_dir.mkdir(parents=True, exist_ok=True)

    failures = []
    skipped = []
    print(f"{'scenario':12s} {'wall':>7s}  {'metrics':>7s}  round-trip")
    for spec in specs:
        if any(tag in spec.tags for tag in args.skip_tag):
            skipped.append(spec.name)
            continue
        try:
            result = run_scenario(spec.name, **spec.smoke)
        except Exception as exc:  # noqa: BLE001 - report, keep sweeping
            failures.append(f"{spec.name}: run failed: {exc!r}")
            print(f"{spec.name:12s} {'-':>7s}  {'-':>7s}  RUN FAILED")
            continue
        text = result.to_json()
        reparsed = RunResult.from_json(text)
        lossless = reparsed == result and reparsed.to_json() == text
        if not lossless:
            failures.append(f"{spec.name}: JSON round-trip is lossy")
        if json_dir:
            result.dump(json_dir / f"{spec.name}.json")
        print(
            f"{spec.name:12s} {result.wall_seconds:6.2f}s  "
            f"{len(result.metrics):7d}  {'ok' if lossless else 'LOSSY'}"
        )
    if skipped:
        print(f"skipped (by tag): {', '.join(skipped)}")

    if failures:
        print("\nSCENARIO REGISTRY FAILURES:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\n{len(specs) - len(skipped)} scenarios ran; all envelopes round-trip")
    return 0


if __name__ == "__main__":
    sys.exit(main())
