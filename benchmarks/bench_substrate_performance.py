"""Substrate micro-benchmarks: engine throughput and sampler costs.

Not a paper artefact — these guard the simulator's performance so the
deployment-scale experiments stay tractable (a regression here silently
turns the Figure 14 run from minutes into hours).
"""

import numpy as np
import pytest

from benchmarks.conftest import record_report
from repro.mc.blame_model import BlameModel
from repro.membership.full import FullMembership
from repro.sim.engine import Simulator
from repro.util.rng import make_generator


def test_event_engine_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.call_later(0.001, tick)

        sim.call_later(0.001, tick)
        sim.run()
        return count

    result = benchmark(run_10k_events)
    assert result == 10_000


def test_membership_sampling_throughput(benchmark):
    membership = FullMembership(make_generator(1, "bench"), range(10_000))

    def sample_batch():
        for node in range(0, 1000):
            membership.sample(node, 12)

    benchmark(sample_batch)


def test_blame_sampler_throughput(benchmark):
    model = BlameModel(fanout=12, request_size=4, p_reception=0.93)
    rng = make_generator(2, "bench")
    benchmark(lambda: model.sample_period_blames(rng, 100_000))


def test_cluster_simulated_second(benchmark):
    """Wall-clock cost of one simulated second of a 60-node deployment."""
    from dataclasses import replace

    from repro.config import planetlab_params
    from repro.experiments.cluster import ClusterConfig, SimCluster

    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=60, fanout=5, source_fanout=5)
    lifting = replace(lifting, managers=10)
    cluster = SimCluster(ClusterConfig(gossip=gossip, lifting=lifting, seed=1))
    cluster.run(until=3.0)  # warm-up

    state = {"until": 3.0}

    def one_second():
        state["until"] += 1.0
        cluster.run(until=state["until"])

    benchmark.pedantic(one_second, rounds=5, iterations=1)
    record_report(
        "substrate_performance",
        f"events processed in warm deployment: {cluster.sim.events_processed}",
    )
