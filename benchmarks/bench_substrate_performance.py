"""Substrate micro-benchmarks: engine throughput and sampler costs.

Not a paper artefact — these guard the simulator's performance so the
deployment-scale experiments stay tractable (a regression here silently
turns the Figure 14 run from minutes into hours).

Before/after baselines for the fast-kernel rewrite live in
``benchmarks/BENCH_substrate.json``; ``scripts/check_bench_regression.py``
re-times the three kernels below and fails on a >30 % regression
against the recorded ``current`` numbers.  See ``docs/PERFORMANCE.md``
for the kernel design and how to refresh the baselines.
"""

import os

import numpy as np
import pytest

from benchmarks.conftest import record_report
from repro.mc.blame_model import BlameModel
from repro.membership.full import FullMembership
from repro.sim.engine import Simulator
from repro.util.rng import make_generator


def test_event_engine_throughput(benchmark):
    """10k self-rescheduling events through the engine's hot path.

    Uses :meth:`Simulator.schedule` (callback + args inline, no handle)
    — the path the network delivery layer drives — mirroring how the
    seed engine's hot path was driven through ``call_later`` + closure.
    """

    def run_10k_events():
        sim = Simulator()
        state = [0]

        def tick(state):
            state[0] += 1
            if state[0] < 10_000:
                sim.schedule(sim.now + 0.001, tick, state)

        sim.schedule(0.001, tick, state)
        sim.run()
        return state[0]

    result = benchmark(run_10k_events)
    assert result == 10_000


def test_event_engine_timer_throughput(benchmark):
    """The handle-returning ``call_later`` path (cancellable timers)."""

    def run_10k_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.call_later(0.001, tick)

        sim.call_later(0.001, tick)
        sim.run()
        return count

    result = benchmark(run_10k_events)
    assert result == 10_000


class _Sink:
    def __init__(self, node_id):
        self.node_id = node_id
        self.count = 0

    def on_message(self, src, message):
        self.count += 1


def test_send_deliver_throughput(benchmark):
    """10k UDP sends through the full network path: wire sizing, upload
    link, trace accounting, loss + latency sampling, delivery event."""
    from repro.sim.latency import UniformLatency
    from repro.sim.loss import BernoulliLoss
    from repro.sim.network import Network
    from repro.wire import Propose

    def run_10k_sends():
        sim = Simulator()
        net = Network(
            sim,
            latency=UniformLatency(np.random.default_rng(3), 0.01, 0.08),
            loss=BernoulliLoss(np.random.default_rng(4), 0.04),
        )
        a, b = _Sink(0), _Sink(1)
        net.register(a)
        net.register(b)
        msg = Propose(proposal_id=1, chunk_ids=(1, 2, 3))
        for _ in range(10_000):
            net.send(0, 1, msg)
        sim.run()
        return b.count

    delivered = benchmark(run_10k_sends)
    assert delivered > 9_000  # ~4 % loss


def test_membership_sampling_throughput(benchmark):
    membership = FullMembership(make_generator(1, "bench"), range(10_000))

    def sample_batch():
        for node in range(0, 1000):
            membership.sample(node, 12)

    benchmark(sample_batch)


def test_blame_sampler_throughput(benchmark):
    model = BlameModel(fanout=12, request_size=4, p_reception=0.93)
    rng = make_generator(2, "bench")
    benchmark(lambda: model.sample_period_blames(rng, 100_000))


def _cluster_simulated_second(benchmark, n, warmup, rounds):
    from repro.experiments.cluster import SimCluster
    from repro.experiments.scaling import scaling_config

    cluster = SimCluster(scaling_config(n, seed=1))
    cluster.run(until=warmup)

    state = {"until": warmup}

    def one_second():
        state["until"] += 1.0
        cluster.run(until=state["until"])

    benchmark.pedantic(one_second, rounds=rounds, iterations=1)
    record_report(
        "substrate_performance",
        f"events processed in warm n={n} deployment: {cluster.sim.events_processed}",
    )


def test_cluster_simulated_second(benchmark):
    """Wall-clock cost of one simulated second of a 300-node deployment
    (the Figure 14 PlanetLab scale)."""
    _cluster_simulated_second(benchmark, n=300, warmup=3.0, rounds=5)


def test_cluster1000_simulated_second(benchmark):
    """Same kernel at the large-n target size (n=1000)."""
    _cluster_simulated_second(benchmark, n=1000, warmup=2.0, rounds=2)


@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_FULL"),
    reason="n=2000 cluster bench is opt-in (REPRO_BENCH_FULL=1)",
)
def test_cluster2000_simulated_second(benchmark):
    """Opt-in n=2000 point of the scaling curve (slow)."""
    _cluster_simulated_second(benchmark, n=2000, warmup=2.0, rounds=2)
