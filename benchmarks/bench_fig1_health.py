"""Figure 1 — system efficiency in the presence of freeriders.

Paper reference (300 PlanetLab nodes, 674 kbps, 25 % freeriders): the
baseline and the LiFTinG-protected deployments deliver a clear stream to
(almost) all nodes at small lags, while without LiFTinG the freeriders
collapse dissemination (curve shifted right and capped well below 1).
"""

import pytest

from benchmarks.conftest import full_scale, record_report
from repro.experiments.fig1 import run_fig1


@pytest.fixture(scope="module")
def fig1_result():
    if full_scale():
        result = run_fig1(n=300, duration=60.0)
    else:
        result = run_fig1(n=120, duration=25.0)
    lines = [
        "fraction of nodes viewing a clear stream vs stream lag",
        "(paper: no-LiFTinG curve collapses; LiFTinG curve tracks the baseline)",
        f"expelled in the LiFTinG run: {result.expelled_with_lifting}",
        "",
        "  lag(s)   baseline   25%-freeriders    25%-freeriders+LiFTinG",
    ]
    for lag, base, collapse, protected in result.rows():
        if lag in (0, 1, 2, 3, 4, 5, 7, 10, 15, 20, 25, 30):
            lines.append(
                f"  {lag:5.0f}    {base:7.2f}    {collapse:12.2f}    {protected:18.2f}"
            )
    healthy_lag = 5.0
    lines += [
        "",
        f"at lag {healthy_lag:.0f}s: baseline {result.baseline.fraction_at(healthy_lag):.2f}, "
        f"no-LiFTinG {result.freeriders_no_lifting.fraction_at(healthy_lag):.2f}, "
        f"LiFTinG {result.freeriders_with_lifting.fraction_at(healthy_lag):.2f}",
    ]
    record_report("fig1_health", "\n".join(lines))
    return result


def test_fig1_lifting_restores_health(fig1_result, benchmark):
    benchmark(lambda: fig1_result.baseline.fraction_at(5.0))

    lag = 5.0
    baseline = fig1_result.baseline.fraction_at(lag)
    collapsed = fig1_result.freeriders_no_lifting.fraction_at(lag)
    protected = fig1_result.freeriders_with_lifting.fraction_at(lag)
    # Who wins and by what factor: baseline ≈ protected >> collapsed.
    assert baseline > 0.9
    assert collapsed < baseline - 0.1
    assert protected > collapsed
    assert protected > 0.85 * baseline
