"""Benchmark-harness plumbing.

Every bench regenerates one of the paper's tables or figures, records a
human-readable report, and times a representative kernel with
pytest-benchmark.  Reports are collected here and printed in the
terminal summary (so they survive pytest's output capturing and land in
``bench_output.txt``); they are also written to ``benchmarks/results/``.

Scaling: the benches run scaled-down deployments by default so the full
harness finishes in minutes; set ``REPRO_BENCH_FULL=1`` to run the
paper-scale configurations (n=300, 60 s, n=10,000 Monte-Carlo...).
"""

from __future__ import annotations

import os
import pathlib
from typing import List

import pytest

_REPORTS: List[str] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    """Whether to run paper-scale configurations."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


def record_report(name: str, text: str) -> None:
    """Register a report for the terminal summary and write it to disk."""
    block = f"\n===== {name} =====\n{text.rstrip()}\n"
    _REPORTS.append(block)
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(block)


@pytest.fixture
def report():
    """The report-recording callable, as a fixture."""
    return record_report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for block in _REPORTS:
        terminalreporter.write(block)
