"""Ablations of LiFTinG's design choices (DESIGN.md §5).

1. **Compensation on/off** — without the b̃ compensation of §6.2, honest
   scores drift with the loss rate and a fixed threshold misfires.
2. **Min-vote vs mean-vote** at the managers — colluding managers can
   whitewash a freerider under mean voting; min voting resists.
3. **Full membership vs gossip peer sampling** — the RPS view bias
   shrinks the entropy headroom the audit threshold γ relies on.
"""

from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import record_report
from repro.config import FreeriderDegree, planetlab_params
from repro.core.reputation import ManagerAssignment, ReputationManager
from repro.experiments.cluster import ClusterConfig, SimCluster
from repro.mc.entropy import sampler_history_entropies
from repro.membership.full import FullMembership
from repro.membership.rps import GossipPeerSampling
from repro.util.rng import make_generator


# ----------------------------------------------------------------------
# 1. compensation ablation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def compensation_ablation():
    gossip, lifting = planetlab_params()
    gossip = replace(gossip, n=60, fanout=5, source_fanout=5, chunk_size=2048)
    lifting = replace(lifting, managers=5, history_periods=12)

    def honest_mean(loss_rate, compensated):
        from repro.experiments.calibration import calibrate

        compensation = None
        if compensated:
            cal = calibrate(gossip, lifting, seed=5, duration=8.0, n=60, loss_rate=loss_rate)
            compensation = cal.compensation
        cluster = SimCluster(
            ClusterConfig(
                gossip=gossip,
                lifting=lifting,
                seed=9,
                loss_rate=loss_rate,
                compensation=compensation if compensated else 0.0,
            )
        )
        cluster.run(until=10.0)
        return float(np.mean(list(cluster.scores().values())))

    rows = []
    for loss in (0.02, 0.08):
        rows.append((loss, honest_mean(loss, False), honest_mean(loss, True)))
    lines = [
        "honest mean score vs loss rate",
        "  loss   uncompensated   compensated  (fixed-threshold detection needs ~0)",
    ]
    for loss, raw, comp in rows:
        lines.append(f"  {loss:4.2f}   {raw:12.2f}   {comp:11.2f}")
    drift = rows[1][1] - rows[0][1]
    lines.append(f"uncompensated drift between loss rates: {drift:+.2f} (breaks a fixed eta)")
    record_report("ablation_compensation", "\n".join(lines))
    return rows


def test_ablation_compensation(compensation_ablation, benchmark):
    benchmark(lambda: compensation_ablation[0])
    (low_loss, raw_low, comp_low), (high_loss, raw_high, comp_high) = compensation_ablation
    # Without compensation the honest population sinks with the loss rate.
    assert raw_high < raw_low < 0
    # With calibrated compensation it stays near zero at both rates.
    assert abs(comp_low) < 3.0
    assert abs(comp_high) < 3.0


# ----------------------------------------------------------------------
# 2. manager vote function
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def vote_ablation():
    gossip, lifting = planetlab_params()
    lifting = replace(lifting, managers=5)
    assignment = ManagerAssignment(range(40), lifting.managers, seed=1)
    clock = lambda: 10.0  # 20 periods

    target = 7
    managers = {}
    for manager_id in assignment.managers_of(target):
        managers[manager_id] = ReputationManager(
            owner=manager_id,
            assignment=assignment,
            gossip=gossip,
            lifting=lifting,
            now=clock,
            compensation=0.0,
        )
    # Honest verifiers blamed the freerider heavily, but 3 of 5 managers
    # collude with it and report a clean score.
    colluding = list(managers.values())[:3]
    honest = list(managers.values())[3:]
    for manager in honest:
        manager.on_blame(target, 400.0)  # score -20

    scores = [m.normalized_score(target) for m in managers.values()]
    min_vote = min(scores)
    mean_vote = float(np.mean(scores))
    lines = [
        "score reads with 3/5 colluding managers whitewashing a freerider",
        f"  per-manager scores: {[round(s, 1) for s in scores]}",
        f"  min vote (LiFTinG): {min_vote:.1f}  -> below eta=-9.75: {min_vote < -9.75}",
        f"  mean vote:          {mean_vote:.1f}  -> below eta=-9.75: {mean_vote < -9.75}",
        "min voting resists colluding managers; mean voting is whitewashed",
    ]
    record_report("ablation_manager_vote", "\n".join(lines))
    return min_vote, mean_vote


def test_ablation_min_vote_resists_collusion(vote_ablation, benchmark):
    benchmark(lambda: min(vote_ablation))
    min_vote, mean_vote = vote_ablation
    assert min_vote < -9.75  # detection survives
    assert mean_vote > -9.75  # mean voting would be whitewashed


# ----------------------------------------------------------------------
# 3. peer-sampling service
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sampling_ablation():
    n, periods, fanout = 600, 40, 6
    rng = make_generator(4, "ablation-ps")
    full = FullMembership(rng, range(n))
    full_entropies = sampler_history_entropies(full, range(80), periods, fanout)

    rps = GossipPeerSampling(make_generator(5, "ablation-rps"), range(n), view_size=18)
    rps.step(rounds=20)

    class SteppingRps:
        """Advance the shuffle between periods, like a live deployment."""

        def sample(self, node, k):
            return rps.sample(node, k)

    entropies = []
    history = {node: [] for node in range(80)}
    for _period in range(periods):
        rps.step()
        for node in range(80):
            history[node].extend(rps.sample(node, fanout))
    width = min(len(h) for h in history.values())
    matrix = np.array([h[:width] for h in history.values()])
    from repro.mc.entropy import row_entropies

    rps_entropies = row_entropies(matrix)

    max_h = np.log2(periods * fanout)
    lines = [
        f"history entropy, n={n}, window={periods}x{fanout}={periods*fanout} picks "
        f"(max {max_h:.2f} bits)",
        f"  full membership: mean {full_entropies.mean():.3f}  min {full_entropies.min():.3f}",
        f"  gossip RPS:      mean {rps_entropies.mean():.3f}  min {rps_entropies.min():.3f}",
        f"entropy headroom lost by RPS: {full_entropies.min() - rps_entropies.min():.3f} bits",
        "the audit threshold gamma must leave room for the sampler's bias (§5.3)",
    ]
    record_report("ablation_peer_sampling", "\n".join(lines))
    return full_entropies, rps_entropies


def test_ablation_peer_sampling(sampling_ablation, benchmark):
    full_entropies, rps_entropies = sampling_ablation
    benchmark(lambda: float(np.mean(rps_entropies)))
    # RPS histories remain random enough for auditing...
    assert rps_entropies.min() > 0.8 * np.log2(40 * 6)
    # ...but are measurably less uniform than full membership.
    assert rps_entropies.mean() <= full_entropies.mean() + 1e-6
