"""Figure 11 — normalised scores with 1,000 freeriders Δ=(0.1,0.1,0.1).

Paper reference: two disjoint score modes separated by a gap after
r = 50 periods; η = -9.75 catches essentially all freeriders with
< 1 % false positives.
"""

import numpy as np
import pytest

from benchmarks.conftest import full_scale, record_report
from repro.experiments.fig11 import run_fig11


@pytest.fixture(scope="module")
def fig11_result():
    n = 10_000
    result = run_fig11(n=n, freeriders=1_000, rounds=50, delta=0.1, seed=13)
    hx, hf, fx, ff = result.cdf_series()
    lines = [
        "n=10,000 (1,000 freeriders Δ=(0.1,0.1,0.1)), r=50 periods, eta=-9.75",
        f"gap between modes (honest p1 - freerider p99):  {result.gap:+.2f}  (paper: positive gap)",
        f"detection alpha at eta:        measured {result.detection:.3f}   (paper: ~1.0 at delta=0.1)",
        f"false positives beta at eta:   measured {result.false_positives:.4f} (paper: < 0.01)",
        f"honest scores:    mean {np.mean(result.sample.honest):+.2f}  range [{hx[0]:.1f}, {hx[-1]:.1f}]",
        f"freerider scores: mean {np.mean(result.sample.freeriders):+.2f}  range [{fx[0]:.1f}, {fx[-1]:.1f}]",
        "",
        "cdf landmarks (score: honest-fraction / freerider-fraction below):",
    ]
    for threshold in (-50, -40, -30, -20, -10, -5, 0, 5, 10):
        hfrac = float(np.mean(result.sample.honest <= threshold))
        ffrac = float(np.mean(result.sample.freeriders <= threshold))
        lines.append(f"  {threshold:+4d}: {hfrac:6.3f} / {ffrac:6.3f}")
    record_report("fig11_score_distribution", "\n".join(lines))
    return result


def test_fig11_two_modes_and_thresholds(fig11_result, benchmark):
    benchmark(
        lambda: fig11_result.sample.detection_fraction(-9.75)
    )
    assert fig11_result.gap > 0
    assert fig11_result.detection > 0.99
    assert fig11_result.false_positives < 0.01
