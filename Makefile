# Convenience targets for the LiFTinG reproduction.
# The python toolchain is assumed present (no installs happen here).

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: test bench-smoke bench-parallel bench-scenarios bench-scaling bench-scaling-smoke bench-check bench-check-fast bench-baseline bench-loadgen bench-loadgen-smoke bench-full

## Tier-1 test suite (must stay green).
test:
	python -m pytest -x -q

## Quick substrate benchmark run (pytest-benchmark timings + reports).
bench-smoke:
	python -m pytest benchmarks/bench_substrate_performance.py -q

## Parallel orchestration scaling + equivalence (speedup asserted on >=4 cores).
bench-parallel:
	python -m pytest benchmarks/bench_parallel_experiments.py -q

## Registry sweep: every scenario at smoke size + RunResult round-trip.
bench-scenarios:
	python benchmarks/bench_scenarios.py --smoke

## Large-n scalability curve (s per sim-second vs n); --record to persist.
bench-scaling:
	python benchmarks/bench_scaling_curve.py

bench-scaling-smoke:
	python benchmarks/bench_scaling_curve.py --smoke

## Compare substrate kernels against benchmarks/BENCH_substrate.json;
## fails on a >30% regression. Use bench-check-fast to skip the
## 300-node cluster kernel.
bench-check:
	python scripts/check_bench_regression.py

bench-check-fast:
	python scripts/check_bench_regression.py --skip-cluster

## Refresh the 'current' baselines after an intentional perf change.
bench-baseline:
	python scripts/check_bench_regression.py --update

## Open-loop load sweep against a live node; records the knee baseline
## into benchmarks/BENCH_loadgen.json (idle machine only).
bench-loadgen:
	python benchmarks/bench_loadgen.py --record

## CI-sized loadgen smoke: report parses, zero invariant violations.
bench-loadgen-smoke:
	python benchmarks/bench_loadgen.py --smoke

## Full benchmark harness (paper-scale; slow).
bench-full:
	REPRO_BENCH_FULL=1 python -m pytest benchmarks -q
